(** The multi-tenant, model-aware dispatcher: the whole model catalog
    served from one elastic replica pool.

    Requests arrive on per-tenant streams and queue in per-tenant
    {!Acrobat_serve.Admission} queues behind an inflight-quota gate: a
    tenant at its quota sheds new arrivals before admission, so one
    misbehaving stream cannot occupy the cluster. Whenever a replica is
    free, the {!Fairshare} scheduler ranks backlogged tenants by weighted
    virtual work and the first tenant whose {!Acrobat_serve.Batcher} wants
    to launch gets the device; the batch is then topped up with requests
    from other tenants of the {e same model} (batches never mix models —
    the multi-model generalization of within-model cross-request
    batching), and every participating tenant is charged device time in
    proportion to its share of the batch.

    Replicas remember their resident model: a launch that changes it pays
    the {!Acrobat_device.Cost_model.model_swap_time} for the incoming
    model's parameter bytes before executing, so the schedule feels the
    real cost of interleaving many models on few devices.

    An {!Autoscaler} watches smoothed per-tenant queue delays and grows or
    drains the pool; scale-down marks the victim replica draining so its
    in-flight batch completes (conservation holds across scale events —
    the chaos campaign's invariant checker runs over exactly this layer).

    Faulty executors are driven to resolution with the single-server
    machinery's retry-then-bisect path (per-replica jitter streams seeded
    by the same [ft_seed + id * 7919] convention). When the resilience
    layer is armed ([t_resilience]), each tenant additionally gets a
    retry-token {!Acrobat_resilience.Budget} (retries charged to the
    batch's lead tenant; a dry budget sheds the batch instead of
    amplifying load), an AIMD {!Acrobat_resilience.Limiter} gating
    admission ahead of its bounded queue, and a circuit breaker that opens
    after consecutive failed batches and sheds arrivals until a half-open
    trial succeeds. With [t_hedge_percentile] set, slow requests are
    duplicated into their tenant's queue after a percentile of recent
    completion latency (the {!Acrobat_serve.Cluster} estimator); first
    completion wins and every duplicate is cancelled, wasted or silently
    dropped — never double-completed.

    With an [auditor] installed ({!Acrobat_serve.Server.auditor}), each
    completed request is sampled for unbatched re-execution on the
    reference engine before delivery: a fingerprint mismatch delivers the
    reference result instead and feeds the serving replica's corruption
    score. A replica whose score crosses the threshold is {e quarantined}:
    drained like a scale-down victim and replaced like-for-like outside
    the autoscaler's envelope — the elastic pool replaces flaky devices
    rather than probing them back in (the fixed-pool {!Acrobat_serve.Replica}
    machine does the probing variant).

    Trace conventions match the cluster: the dispatcher is pid 0, replica
    [i] is pid [i + 1], request [id] rides tid [id + 1], and every admitted
    request ends in exactly one pid-0 terminal instant — [done], [expired],
    [shed], [shed_quota], [shed_breaker], [shed_limit], [retry_budget],
    [poisoned] or [budget_exhausted]. *)

module Rng = Acrobat_tensor.Rng
module Cost_model = Acrobat_device.Cost_model
module Admission = Acrobat_serve.Admission
module Batcher = Acrobat_serve.Batcher
module Server = Acrobat_serve.Server
module Stats = Acrobat_serve.Stats
module Clock = Acrobat_serve.Clock
module Event_loop = Acrobat_serve.Event_loop
module Traffic = Acrobat_serve.Traffic
module Trace = Acrobat_obs.Trace
module Metrics = Acrobat_obs.Metrics
module Json = Acrobat_obs.Json
module Cluster = Acrobat_serve.Cluster
module Replica = Acrobat_serve.Replica
module Resilience = Acrobat_resilience.Policy
module Budget = Acrobat_resilience.Budget
module Limiter = Acrobat_resilience.Limiter
module Net = Acrobat_net.Net

type config = {
  t_server : Server.config;
      (** Per-tenant queue capacity, batch policy, batcher cost seed and
          fault-tolerance knobs ([deadline_us] is ignored: each tenant's
          SLO is its deadline). *)
  t_autoscale : Autoscaler.config;
  t_swap_cost : Cost_model.t;  (** Sizes the resident-model swap penalty. *)
  t_resilience : Resilience.config;
      (** Per-tenant retry budgets, admission limiters and circuit
          breakers; {!Resilience.off} leaves every legacy path untouched. *)
  t_hedge_percentile : float option;
      (** Duplicate a still-unresolved request after this percentile of
          recent completion latency; [None] disables hedging. *)
  t_net : Net.plan option;
      (** Network fault plan; only the partition window applies here. The
          elastic dispatcher models a partitioned replica as scheduler-
          invisible unavailability (no per-message transport, zero RNG
          draws), so a partitioned device is indistinguishable from a dead
          one until the cut heals and a scheduled pass re-admits it. The
          per-message lossy transport lives in {!Acrobat_serve.Cluster}. *)
}

let default_config =
  {
    t_server = Server.default_config;
    t_autoscale = Autoscaler.fixed 1;
    t_swap_cost = Cost_model.default;
    t_resilience = Resilience.off;
    t_hedge_percentile = None;
    t_net = None;
  }

(* --- Replica pool --- *)

type rstate =
  | Active  (** Taking new batches (possibly still warming up). *)
  | Draining  (** Scale-down victim: finishes its batch, takes no more. *)
  | Retired  (** Gone; kept in the array so ids stay stable. *)

type replica = {
  rp_id : int;
  mutable rp_state : rstate;
  mutable rp_busy : bool;
  mutable rp_ready_us : float;  (** Cold-start warmup end; 0 for initial pool. *)
  mutable rp_resident : string option;  (** Model whose weights are loaded. *)
  mutable rp_swaps : int;
  mutable rp_batches : int;
  mutable rp_busy_us : float;  (** Total device-occupied time (incl. swaps). *)
  mutable rp_epoch : int;  (** Fences continuations across retirement. *)
  rp_rng : Rng.t;  (** Retry-backoff jitter; drawn only on failures. *)
  rp_audit_rng : Rng.t;  (** Audit sampling; drawn only when an auditor is armed. *)
  mutable rp_corrupt_score : float;  (** EWMA over audit verdicts (1 = dirty). *)
  mutable rp_net_cut : bool;
      (** Inside the net plan's partition window (edge-tracked so link-down
          and heal are counted once per window). Always false without a plan. *)
}

let rp_pid rp = rp.rp_id + 1

(* --- Per-tenant serving state --- *)

(** Per-tenant circuit breaker (resilience layer only): opens after
    consecutive failed batches attributed to the tenant as lead, sheds
    arrivals during the cooldown, then admits a half-open trial. *)
type breaker = Closed | Open of { until_us : float } | Half_open

type 'a tstate = {
  ts_tenant : Tenant.t;
  ts_queue : 'a Admission.t;
  ts_batcher : Batcher.t;
  ts_stats : Stats.t;
  mutable ts_inflight : int;  (** Admitted and not yet terminal. *)
  mutable ts_peak_inflight : int;
  mutable ts_delay_ewma_us : float;  (** Smoothed queue delay (scaler signal). *)
  ts_budget : Budget.t option;  (** Retry tokens; refilled by fresh admits. *)
  ts_limiter : Limiter.t option;  (** AIMD admission gate on queue delay. *)
  mutable ts_breaker : breaker;
  mutable ts_consec_failures : int;  (** Failed batches led since last success. *)
}

(** Dispatcher-side view of one request's copies when hedging is armed;
    absent from the table (hedging off) means "single copy". *)
type 'a hentry = {
  mutable he_done : bool;
  mutable he_copies : int;
  mutable he_hedged : bool;
  mutable he_hedge_copy : 'a Admission.request option;
      (** The duplicate's physical identity, to attribute hedge wins. *)
}

type 'a state = {
  cfg : config;
  loop : Event_loop.t;
  tenants : 'a tstate array;
  fair : Fairshare.t;
  scaler : Autoscaler.t;
  mutable replicas : replica array;
  stats : Stats.t;  (** Aggregate across tenants, in event order. *)
  execute : int -> model:string -> 'a list -> Server.exec_result;
  auditor : 'a Server.auditor option;
      (** Sampled unbatched re-execution gate ahead of delivery; [None]
          leaves every legacy path untouched. *)
  model_bytes : string -> int;
  pmax : int;  (** The policy's batch-size cap. *)
  mutable scale_events : (float * string * int) list;  (** Reversed. *)
  mutable peak_replicas : int;
  tracer : Trace.t;
  (* Hedging state; only populated when [t_hedge_percentile] is set. *)
  entries : (int, 'a hentry) Hashtbl.t;
  lat_ring : float array;  (** Recent completion latencies (us), circular. *)
  mutable lat_count : int;
  mutable lat_idx : int;
}

let now_us st = Event_loop.now st.loop

let active_replicas st =
  Array.fold_left (fun n rp -> if rp.rp_state = Active then n + 1 else n) 0 st.replicas

(* Request-terminal instant on the dispatcher track; every admitted id ends
   in exactly one (quota sheds terminate at the door the same way). *)
let trace_terminal st (ts : 'a tstate) ~name ~ts_us (r : 'a Admission.request) =
  Trace.instant st.tracer ~name ~cat:"request" ~pid:0
    ~tid:(Server.req_tid r.Admission.rq_id) ~ts_us
    ~args:
      (Trace.tag ~tenant:ts.ts_tenant.Tenant.tn_name ~model:ts.ts_tenant.Tenant.tn_model
         [ "id", Json.Int r.Admission.rq_id ])

(* --- Hedge copy accounting ---

   With hedging off the entry table is empty and every request is its own
   single copy, so [copy_drop_terminal] is the constant [true] and nothing
   below changes a legacy run. *)

let record_latency st lat_us =
  st.lat_ring.(st.lat_idx) <- lat_us;
  st.lat_idx <- (st.lat_idx + 1) mod Cluster.hedge_window;
  if st.lat_count < Cluster.hedge_window then st.lat_count <- st.lat_count + 1

let hedge_delay_us st =
  match st.cfg.t_hedge_percentile with
  | None -> None
  | Some p -> Cluster.hedge_delay ~percentile:p st.lat_ring ~count:st.lat_count

(* A copy left the system without completing (expired, retry-budget shed,
   poisoned, end-of-run drain). True when that drop is the request's
   terminal outcome; a duplicate of a live or resolved request just
   decrements the copy count. *)
let copy_drop_terminal st (r : 'a Admission.request) =
  match Hashtbl.find_opt st.entries r.Admission.rq_id with
  | None -> true
  | Some e ->
    e.he_copies <- e.he_copies - 1;
    if e.he_done then begin
      st.stats.Stats.hedge_cancels <- st.stats.Stats.hedge_cancels + 1;
      false
    end
    else if e.he_copies > 0 then false
    else begin
      e.he_done <- true;
      true
    end

(* A queued request left without executing (swept or popped past deadline). *)
let drop_expired st (ts : 'a tstate) ~ts_us dropped =
  List.iter
    (fun r ->
      if copy_drop_terminal st r then begin
        st.stats.Stats.expired <- st.stats.Stats.expired + 1;
        ts.ts_inflight <- ts.ts_inflight - 1;
        trace_terminal st ts ~name:"expired" ~ts_us r
      end)
    dropped

(* --- Launch path --- *)

(* Partition-aware reachability. With a net plan armed, a replica inside
   the plan's partition window is skipped by the scheduler exactly as a
   dead device would be; the launch pass at the heal instant (scheduled in
   [simulate]) re-admits it. Edge transitions feed the net counters so a
   window costs exactly one link-down and one heal per cut replica. No RNG
   is drawn, so a plan without a partition clause leaves every schedule
   byte-identical. *)
let net_reachable st rp ~now =
  match st.cfg.t_net with
  | None -> true
  | Some plan ->
    let n = Array.length st.replicas in
    let cut = Net.partitioned plan ~replica:rp.rp_id ~n ~now_us:now in
    if cut && not rp.rp_net_cut then begin
      rp.rp_net_cut <- true;
      st.stats.Stats.net_link_downs <- st.stats.Stats.net_link_downs + 1;
      Trace.instant st.tracer ~name:"net_link_down" ~cat:"net" ~pid:(rp_pid rp)
        ~tid:0 ~ts_us:now
        ~args:[ "replica", Json.Int rp.rp_id ]
    end
    else if (not cut) && rp.rp_net_cut then begin
      rp.rp_net_cut <- false;
      st.stats.Stats.net_heals <- st.stats.Stats.net_heals + 1;
      Trace.instant st.tracer ~name:"net_heal" ~cat:"net" ~pid:(rp_pid rp) ~tid:0
        ~ts_us:now
        ~args:[ "replica", Json.Int rp.rp_id ]
    end;
    not cut

let new_replica st ~ready_us =
  let id = Array.length st.replicas in
  let rp =
    {
      rp_id = id;
      rp_state = Active;
      rp_busy = false;
      rp_ready_us = ready_us;
      rp_resident = None;
      rp_swaps = 0;
      rp_batches = 0;
      rp_busy_us = 0.0;
      rp_epoch = 0;
      rp_rng = Rng.create (st.cfg.t_server.Server.tolerance.Server.ft_seed + (id * 7919));
      rp_audit_rng =
        Rng.create
          (match st.auditor with
          | Some a -> a.Server.au_seed + (id * 104729)
          | None -> 0);
      rp_corrupt_score = 0.0;
      rp_net_cut = false;
    }
  in
  st.replicas <- Array.append st.replicas [| rp |];
  if Trace.enabled st.tracer then
    Trace.name_process st.tracer ~pid:(rp_pid rp) ~name:(Fmt.str "replica-%d" id);
  rp

let retire st rp =
  rp.rp_state <- Retired;
  rp.rp_epoch <- rp.rp_epoch + 1;
  Trace.instant st.tracer ~name:"retire" ~cat:"tenancy" ~pid:0 ~tid:0 ~ts_us:(now_us st)
    ~args:[ "replica", Json.Int rp.rp_id ]

(* Pull up to [room] same-model requests from other backlogged tenants, in
   fair-share order, so a launch tops its batch up across tenants. *)
let fill_batch st ~lead ~model ~room ~now =
  if room <= 0 then []
  else begin
    let order =
      Fairshare.ranked st.fair ~eligible:(fun i ->
          i <> lead
          && st.tenants.(i).ts_tenant.Tenant.tn_model = model
          && not (Admission.is_empty st.tenants.(i).ts_queue))
    in
    let room = ref room in
    List.filter_map
      (fun ti ->
        if !room <= 0 then None
        else begin
          let ts = st.tenants.(ti) in
          let live, dropped =
            Admission.take_with_expired ts.ts_queue ~now_us:now ~limit:!room
          in
          drop_expired st ts ~ts_us:now dropped;
          let live =
            List.filter
              (fun (r : 'a Admission.request) ->
                match Hashtbl.find_opt st.entries r.Admission.rq_id with
                | Some e when e.he_done ->
                  e.he_copies <- e.he_copies - 1;
                  st.stats.Stats.hedge_cancels <- st.stats.Stats.hedge_cancels + 1;
                  false
                | _ -> true)
              live
          in
          if live = [] then None
          else begin
            room := !room - List.length live;
            Some (ti, live)
          end
        end)
      order
  end

(* Drive one batch to resolution on [rp]: every request completes or is
   dropped as poison, then [k] runs at the time the device frees up. The
   batch is a list of [(owner_tenant, request)] pairs — bisection halves
   keep their owners, so per-tenant accounting survives fault isolation. *)
let rec resolve st rp (batch : (int * 'a Admission.request) list) ~lead ~model ~swap_us
    ~(k : unit -> unit) =
  let tol = st.cfg.t_server.Server.tolerance in
  (* Extract payloads once per resolution, not per retry attempt (the
     batch is fixed for the whole retry/backoff cycle). *)
  let payloads =
    List.map (fun ((_, r) : int * 'a Admission.request) -> r.Admission.rq_payload) batch
  in
  let rec attempt ~swap_us ~retries_left ~backoff_us () =
    let now = now_us st in
    if swap_us > 0.0 then
      (* Load the incoming model's weights before executing; the device is
         occupied for the duration, then the attempt proper starts. *)
      Event_loop.schedule st.loop ~at:(now +. swap_us)
        (attempt ~swap_us:0.0 ~retries_left ~backoff_us)
    else begin
      Trace.set_context st.tracer ~pid:(rp_pid rp) ~tid:0 ~base_us:now;
      match st.execute rp.rp_id ~model payloads with
      | Server.Exec_ok outcome ->
        let size = List.length batch in
        let done_us = now +. Float.max 0.0 outcome.Server.ex_latency_us in
        let lead_ts = st.tenants.(lead) in
        if Resilience.active st.cfg.t_resilience then begin
          lead_ts.ts_consec_failures <- 0;
          if lead_ts.ts_breaker = Half_open then lead_ts.ts_breaker <- Closed
        end;
        Batcher.observe_batch lead_ts.ts_batcher ~size
          ~latency_us:outcome.Server.ex_latency_us;
        Stats.note_batch st.stats ~size ~profiler:outcome.Server.ex_profiler;
        Stats.note_batch lead_ts.ts_stats ~size ~profiler:None;
        if outcome.Server.ex_corrupted then begin
          st.stats.Stats.corrupted_batches <- st.stats.Stats.corrupted_batches + 1;
          lead_ts.ts_stats.Stats.corrupted_batches <-
            lead_ts.ts_stats.Stats.corrupted_batches + 1
        end;
        rp.rp_batches <- rp.rp_batches + 1;
        Trace.complete st.tracer ~name:"batch" ~cat:"serve" ~pid:(rp_pid rp) ~tid:0
          ~ts_us:now ~dur_us:outcome.Server.ex_latency_us
          ~args:
            (Trace.tag ~tenant:lead_ts.ts_tenant.Tenant.tn_name ~model
               [ "size", Json.Int size; "replica", Json.Int rp.rp_id ]);
        (* Charge each participating tenant its share of the device time
           (the lead's swap was billed at launch). *)
        let busy = Float.max 0.0 outcome.Server.ex_latency_us in
        let counts = Array.make (Array.length st.tenants) 0 in
        List.iter (fun (ti, _) -> counts.(ti) <- counts.(ti) + 1) batch;
        Array.iteri
          (fun ti c ->
            if c > 0 then
              Fairshare.charge st.fair ti
                ~work:(busy *. float_of_int c /. float_of_int size))
          counts;
        (* Hedge dedup: only the first completing copy of a request is a
           completion; the rest are wasted work. With hedging off the entry
           table is empty and [fresh] is the whole batch. Each survivor
           keeps its batch position so the audit gate can look up its
           fingerprint. *)
        let _, fresh_rev =
          List.fold_left
            (fun (bi, acc) ((ti, r) : int * 'a Admission.request) ->
              let keep =
                match Hashtbl.find_opt st.entries r.Admission.rq_id with
                | None -> true
                | Some e when e.he_done ->
                  e.he_copies <- e.he_copies - 1;
                  st.stats.Stats.hedge_wasted <- st.stats.Stats.hedge_wasted + 1;
                  false
                | Some e ->
                  e.he_done <- true;
                  e.he_copies <- e.he_copies - 1;
                  record_latency st (done_us -. r.Admission.rq_arrival_us);
                  (match e.he_hedge_copy with
                  | Some hc when hc == r ->
                    st.stats.Stats.hedge_wins <- st.stats.Stats.hedge_wins + 1
                  | _ -> ());
                  true
              in
              bi + 1, if keep then (bi, ti, r) :: acc else acc)
            (0, []) batch
        in
        let fresh = List.rev fresh_rev in
        List.iter
          (fun ((bi, ti, r) : int * int * 'a Admission.request) ->
            let ts = st.tenants.(ti) in
            (* Sampled audit gate ahead of delivery; a mismatch delivers
               the reference result (the request is saved) and feeds the
               serving replica's corruption score. *)
            let d =
              Server.audit_request st.auditor ~audit_rng:rp.rp_audit_rng
                ~stats:st.stats ~forced:false ~outcome ~index:bi r
            in
            if d.Server.ad_audited then begin
              ts.ts_stats.Stats.audits <- ts.ts_stats.Stats.audits + 1;
              if not d.Server.ad_clean then
                ts.ts_stats.Stats.audit_mismatches <-
                  ts.ts_stats.Stats.audit_mismatches + 1;
              Trace.instant st.tracer
                ~name:(if d.Server.ad_clean then "audit_ok" else "audit_mismatch")
                ~cat:"integrity" ~pid:0 ~tid:(Server.req_tid r.Admission.rq_id)
                ~ts_us:done_us
                ~args:[ "replica", Json.Int rp.rp_id ];
              rp.rp_corrupt_score <-
                ((1.0 -. Replica.corrupt_alpha) *. rp.rp_corrupt_score)
                +. (if d.Server.ad_clean then 0.0 else Replica.corrupt_alpha);
              if
                (not d.Server.ad_clean)
                && rp.rp_corrupt_score >= Replica.corrupt_threshold
                && rp.rp_state = Active
              then quarantine st rp ~ts_us:done_us
            end;
            Server.note_delivery st.stats ~outcome d;
            Server.note_delivery ts.ts_stats ~outcome d;
            let r_done_us = done_us +. d.Server.ad_extra_us in
            Stats.record_fields st.stats ~id:r.Admission.rq_id
              ~arrival_us:r.Admission.rq_arrival_us ~start_us:now
              ~done_us:r_done_us ~batch_size:size;
            Stats.record_fields ts.ts_stats ~id:r.Admission.rq_id
              ~arrival_us:r.Admission.rq_arrival_us ~start_us:now
              ~done_us:r_done_us ~batch_size:size;
            (match r.Admission.rq_deadline_us with
            | Some d when r_done_us > d -> ()
            | Some _ | None ->
              st.stats.Stats.slo_ok <- st.stats.Stats.slo_ok + 1;
              ts.ts_stats.Stats.slo_ok <- ts.ts_stats.Stats.slo_ok + 1);
            Trace.complete st.tracer ~name:"queue" ~cat:"request" ~pid:0
              ~tid:(Server.req_tid r.Admission.rq_id) ~ts_us:r.Admission.rq_arrival_us
              ~dur_us:(now -. r.Admission.rq_arrival_us);
            trace_terminal st ts ~name:"done" ~ts_us:r_done_us r)
          fresh;
        Event_loop.schedule st.loop ~at:done_us (fun () ->
            List.iter
              (fun ((_, ti, _) : int * int * 'a Admission.request) ->
                st.tenants.(ti).ts_inflight <- st.tenants.(ti).ts_inflight - 1)
              fresh;
            k ())
      | Server.Exec_fault { ef_latency_us; ef_reason; ef_transient; ef_oom = _; ef_reset = _ }
        ->
        let lead_ts = st.tenants.(lead) in
        st.stats.Stats.fault_batches <- st.stats.Stats.fault_batches + 1;
        lead_ts.ts_stats.Stats.fault_batches <- lead_ts.ts_stats.Stats.fault_batches + 1;
        let freed_us = now +. Float.max 0.0 ef_latency_us in
        Trace.complete st.tracer ~name:"batch_fault" ~cat:"fault" ~pid:(rp_pid rp)
          ~tid:0 ~ts_us:now ~dur_us:ef_latency_us
          ~args:
            [
              "reason", Json.Str ef_reason;
              "transient", Json.Bool ef_transient;
              "size", Json.Int (List.length batch);
            ];
        if Resilience.active st.cfg.t_resilience then begin
          (* The lead tenant owns the batch's outcome: its breaker counts
             the failure, and a half-open trial that fails reopens at once. *)
          lead_ts.ts_consec_failures <- lead_ts.ts_consec_failures + 1;
          if
            lead_ts.ts_breaker = Half_open
            || lead_ts.ts_consec_failures >= tol.Server.breaker_threshold
          then begin
            lead_ts.ts_breaker <-
              Open { until_us = freed_us +. tol.Server.breaker_cooldown_us };
            lead_ts.ts_consec_failures <- 0;
            st.stats.Stats.breaker_opens <- st.stats.Stats.breaker_opens + 1;
            lead_ts.ts_stats.Stats.breaker_opens <-
              lead_ts.ts_stats.Stats.breaker_opens + 1;
            Trace.instant st.tracer ~name:"breaker_open" ~cat:"resilience" ~pid:0
              ~tid:0 ~ts_us:freed_us
              ~args:
                (Trace.tag ~tenant:lead_ts.ts_tenant.Tenant.tn_name ~model
                   [ "replica", Json.Int rp.rp_id ])
          end
        end;
        (* The retry-budget check (and the [retries_left = 0] guard around
           it) precedes the jitter draw: a run that never retries — whether
           fault-free, retry-exhausted or budget-denied — leaves the
           replica's RNG stream untouched. *)
        if ef_transient && retries_left > 0 then begin
          let size = List.length batch in
          match lead_ts.ts_budget with
          | Some b when not (Budget.try_spend b size) ->
            (* Budget dry: retrying would amplify load the pool already
               cannot absorb. Shed the batch instead of bisecting —
               bisection is itself re-offered load. *)
            List.iter
              (fun (ti, (r : 'a Admission.request)) ->
                let ts = st.tenants.(ti) in
                if copy_drop_terminal st r then begin
                  st.stats.Stats.retry_shed <- st.stats.Stats.retry_shed + 1;
                  ts.ts_stats.Stats.retry_shed <- ts.ts_stats.Stats.retry_shed + 1;
                  ts.ts_inflight <- ts.ts_inflight - 1;
                  trace_terminal st ts ~name:"retry_budget" ~ts_us:freed_us r
                end)
              batch;
            Event_loop.schedule st.loop ~at:freed_us (fun () -> k ())
          | budget ->
            if Option.is_some budget then begin
              st.stats.Stats.retried_requests <-
                st.stats.Stats.retried_requests + size;
              lead_ts.ts_stats.Stats.retried_requests <-
                lead_ts.ts_stats.Stats.retried_requests + size
            end;
            st.stats.Stats.retries <- st.stats.Stats.retries + 1;
            lead_ts.ts_stats.Stats.retries <- lead_ts.ts_stats.Stats.retries + 1;
            let jitter =
              1.0 +. (tol.Server.jitter_frac *. ((2.0 *. Rng.float rp.rp_rng) -. 1.0))
            in
            let at = freed_us +. Float.max 0.0 (backoff_us *. jitter) in
            Trace.instant st.tracer ~name:"retry" ~cat:"fault" ~pid:(rp_pid rp) ~tid:0
              ~ts_us:at
              ~args:[ "attempt", Json.Int (tol.Server.max_retries - retries_left + 1) ];
            Event_loop.schedule st.loop ~at
              (attempt ~swap_us:0.0 ~retries_left:(retries_left - 1)
                 ~backoff_us:(backoff_us *. tol.Server.backoff_mult))
        end
        else
          Event_loop.schedule st.loop ~at:freed_us (fun () ->
              bisect st rp batch ~lead ~model ~k)
    end
  in
  attempt ~swap_us ~retries_left:tol.Server.max_retries ~backoff_us:tol.Server.backoff_base_us ()

(* Binary fault isolation, same shape as the single server's: halves get a
   fresh retry budget (and no swap — the model is already resident). *)
and bisect st rp (batch : (int * 'a Admission.request) list) ~lead ~model ~k =
  match batch with
  | [] -> k ()
  | [ (ti, r) ] ->
    let ts = st.tenants.(ti) in
    if copy_drop_terminal st r then begin
      st.stats.Stats.poisoned <- st.stats.Stats.poisoned + 1;
      ts.ts_stats.Stats.poisoned <- ts.ts_stats.Stats.poisoned + 1;
      ts.ts_inflight <- ts.ts_inflight - 1;
      trace_terminal st ts ~name:"poisoned" ~ts_us:(now_us st) r
    end;
    k ()
  | _ ->
    let lead_ts = st.tenants.(lead) in
    st.stats.Stats.bisections <- st.stats.Stats.bisections + 1;
    lead_ts.ts_stats.Stats.bisections <- lead_ts.ts_stats.Stats.bisections + 1;
    Trace.instant st.tracer ~name:"bisect" ~cat:"fault" ~pid:(rp_pid rp) ~tid:0
      ~ts_us:(now_us st)
      ~args:[ "size", Json.Int (List.length batch) ];
    let half = List.length batch / 2 in
    let left = List.filteri (fun i _ -> i < half) batch in
    let right = List.filteri (fun i _ -> i >= half) batch in
    resolve st rp left ~lead ~model ~swap_us:0.0 ~k:(fun () ->
        resolve st rp right ~lead ~model ~swap_us:0.0 ~k)

(* Put one free replica to work: offer it to backlogged tenants in
   fair-share order; the first whose batcher wants to flush launches. A
   tenant that prefers to wait is skipped (work conservation) but remembered
   as the earliest wake-up if nobody launches. *)
and try_launch st rp =
  let now = now_us st in
  let wake = ref infinity in
  let order =
    Fairshare.ranked st.fair ~eligible:(fun i ->
        not (Admission.is_empty st.tenants.(i).ts_queue))
  in
  let rec go = function
    | [] ->
      if !wake < infinity then
        Event_loop.schedule st.loop ~at:!wake (fun () -> pass st)
    | ti :: rest -> (
      let ts = st.tenants.(ti) in
      match
        Batcher.decide ts.ts_batcher ~now_us:now
          ~queue_len:(Admission.length ts.ts_queue)
          ~oldest_arrival_us:(Option.get (Admission.oldest_arrival_us ts.ts_queue))
      with
      | Batcher.Wait_until at when at > now ->
        if at < !wake then wake := at;
        go rest
      | Batcher.Wait_until _ ->
        if not (flush st rp ti ~now ~limit:(min (Admission.length ts.ts_queue) st.pmax))
        then try_launch st rp
      | Batcher.Flush limit ->
        if not (flush st rp ti ~now ~limit:(min limit st.pmax)) then try_launch st rp)
  in
  go order

(* Assemble and launch one batch for [rp], led by tenant [ti]. Returns false
   when everything popped had already expired (the caller re-scans). *)
and flush st rp ti ~now ~limit =
  let ts = st.tenants.(ti) in
  (* Feed the tenant's queue-delay signal into its AIMD admission limiter
     at each launch attempt, mirroring the single server. *)
  (match ts.ts_limiter with
  | None -> ()
  | Some lim ->
    let delay_us =
      match Admission.oldest_arrival_us ts.ts_queue with
      | Some a -> now -. a
      | None -> 0.0
    in
    Limiter.observe lim ~delay_us);
  let live, dropped = Admission.take_with_expired ts.ts_queue ~now_us:now ~limit in
  drop_expired st ts ~ts_us:now dropped;
  (* Stale hedge duplicates whose winner already completed are dropped
     unexecuted (counted inside [copy_drop_terminal] as cancels). *)
  let live =
    List.filter
      (fun (r : 'a Admission.request) ->
        match Hashtbl.find_opt st.entries r.Admission.rq_id with
        | Some e when e.he_done ->
          e.he_copies <- e.he_copies - 1;
          st.stats.Stats.hedge_cancels <- st.stats.Stats.hedge_cancels + 1;
          false
        | _ -> true)
      live
  in
  match live with
  | [] -> false
  | live ->
    Fairshare.serve st.fair ti;
    let model = ts.ts_tenant.Tenant.tn_model in
    let fills = fill_batch st ~lead:ti ~model ~room:(st.pmax - List.length live) ~now in
    let batch =
      List.concat_map (fun (tj, rs) -> List.map (fun r -> tj, r) rs) ((ti, live) :: fills)
    in
    rp.rp_busy <- true;
    let launch_us = now in
    let swap_us =
      if rp.rp_resident = Some model then 0.0
      else begin
        let param_bytes = st.model_bytes model in
        let d = Cost_model.model_swap_time st.cfg.t_swap_cost ~param_bytes in
        rp.rp_resident <- Some model;
        rp.rp_swaps <- rp.rp_swaps + 1;
        st.stats.Stats.swaps <- st.stats.Stats.swaps + 1;
        ts.ts_stats.Stats.swaps <- ts.ts_stats.Stats.swaps + 1;
        if d > 0.0 then
          Trace.complete st.tracer ~name:"swap" ~cat:"tenancy" ~pid:(rp_pid rp) ~tid:0
            ~ts_us:now ~dur_us:d
            ~args:
              (Trace.tag ~tenant:ts.ts_tenant.Tenant.tn_name ~model
                 [ "param_bytes", Json.Int param_bytes ]);
        (* The swap is the lead tenant's doing: bill it now, while the
           batch's own time is billed per share at completion. *)
        Fairshare.charge st.fair ti ~work:d;
        d
      end
    in
    let epoch = rp.rp_epoch in
    resolve st rp batch ~lead:ti ~model ~swap_us ~k:(fun () ->
        if rp.rp_epoch = epoch then begin
          rp.rp_busy <- false;
          rp.rp_busy_us <- rp.rp_busy_us +. (now_us st -. launch_us);
          if rp.rp_state = Draining then retire st rp else ();
          pass st
        end);
    true

(* Offer every free, warmed-up, active, reachable replica to the tenants. *)
and pass st =
  Array.iter
    (fun rp ->
      if
        rp.rp_state = Active && (not rp.rp_busy)
        && now_us st >= rp.rp_ready_us
        && net_reachable st rp ~now:(now_us st)
      then try_launch st rp)
    st.replicas

(* Audit-driven containment: a replica whose corruption score crosses the
   threshold drains like a scale-down victim — its in-flight batch has
   already delivered through the audit gate, so nothing is requeued — and
   is replaced like-for-like (cold-start warmup, outside the autoscaler's
   min/max envelope) so the pool keeps its capacity while the flaky device
   leaves the rotation. The elastic pool replaces rather than probes;
   probe-based re-admission is the fixed-pool {!Replica} machine's job. *)
and quarantine st rp ~ts_us =
  rp.rp_state <- Draining;
  st.stats.Stats.quarantines <- st.stats.Stats.quarantines + 1;
  Trace.instant st.tracer ~name:"quarantine" ~cat:"integrity" ~pid:(rp_pid rp) ~tid:0
    ~ts_us
    ~args:[ "replica", Json.Int rp.rp_id; "score", Json.Float rp.rp_corrupt_score ];
  let nrp =
    new_replica st ~ready_us:(ts_us +. st.cfg.t_autoscale.Autoscaler.as_warmup_us)
  in
  let active = active_replicas st in
  if active > st.peak_replicas then st.peak_replicas <- active;
  st.scale_events <- (ts_us, "quarantine_replace", active) :: st.scale_events;
  Trace.instant st.tracer ~name:"quarantine_replace" ~cat:"integrity" ~pid:0 ~tid:0
    ~ts_us
    ~args:[ "replica", Json.Int nrp.rp_id; "ready_us", Json.Float nrp.rp_ready_us ];
  Event_loop.schedule st.loop ~at:nrp.rp_ready_us (fun () -> pass st)

(* --- Hedging --- *)

(* Duplicate a still-unresolved request back into its tenant's queue; the
   first completion wins, the loser is cancelled (still queued) or counted
   wasted (already executing). Only ever scheduled when hedging is armed. *)
let maybe_hedge st (ts : 'a tstate) (e : 'a hentry) (r : 'a Admission.request) =
  if (not e.he_done) && not e.he_hedged then begin
    let now = now_us st in
    let copy = { r with Admission.rq_id = r.Admission.rq_id } in
    e.he_hedged <- true;
    e.he_hedge_copy <- Some copy;
    e.he_copies <- e.he_copies + 1;
    st.stats.Stats.hedges <- st.stats.Stats.hedges + 1;
    Trace.instant st.tracer ~name:"hedge" ~cat:"tenancy" ~pid:0
      ~tid:(Server.req_tid r.Admission.rq_id) ~ts_us:now
      ~args:
        (Trace.tag ~tenant:ts.ts_tenant.Tenant.tn_name
           ~model:ts.ts_tenant.Tenant.tn_model
           [ "id", Json.Int r.Admission.rq_id ]);
    let admitted, swept = Admission.offer_swept ts.ts_queue ~now_us:now copy in
    drop_expired st ts ~ts_us:now swept;
    if admitted then Event_loop.schedule st.loop ~at:now (fun () -> pass st)
    else
      (* Queue full: the duplicate is lost; the primary copy stands alone,
         so this never terminates the request. *)
      e.he_copies <- e.he_copies - 1
  end

(* --- Admission --- *)

let on_arrival st (ts : 'a tstate) (r : 'a Admission.request) =
  let now = now_us st in
  Batcher.observe_arrival ts.ts_batcher ~now_us:now;
  Trace.instant st.tracer ~name:"admit" ~cat:"request" ~pid:0
    ~tid:(Server.req_tid r.Admission.rq_id) ~ts_us:now
    ~args:
      (Trace.tag ~tenant:ts.ts_tenant.Tenant.tn_name ~model:ts.ts_tenant.Tenant.tn_model
         [ "id", Json.Int r.Admission.rq_id ]);
  let breaker_open =
    match ts.ts_breaker with
    | Open { until_us } when now < until_us -> true
    | Open _ ->
      (* Cooldown elapsed: admit one half-open trial batch. *)
      ts.ts_breaker <- Half_open;
      false
    | Closed | Half_open -> false
  in
  (* The configured quota is per replica: an autoscaled pool admits
     proportionally more in-flight work, so quotas never become the binding
     constraint after a scale-up. *)
  let quota = ts.ts_tenant.Tenant.tn_quota * max 1 (active_replicas st) in
  if breaker_open then begin
    st.stats.Stats.breaker_shed <- st.stats.Stats.breaker_shed + 1;
    ts.ts_stats.Stats.breaker_shed <- ts.ts_stats.Stats.breaker_shed + 1;
    trace_terminal st ts ~name:"shed_breaker" ~ts_us:now r
  end
  else if ts.ts_inflight >= quota then begin
    (* Over quota: refuse before admission so the queue (and the cluster
       behind it) never sees the excess. *)
    st.stats.Stats.quota_shed <- st.stats.Stats.quota_shed + 1;
    ts.ts_stats.Stats.quota_shed <- ts.ts_stats.Stats.quota_shed + 1;
    trace_terminal st ts ~name:"shed_quota" ~ts_us:now r
  end
  else begin
    match ts.ts_limiter with
    | Some lim when not (Limiter.admits lim ~queued:(Admission.length ts.ts_queue)) ->
      (* The adaptive concurrency limiter gates ahead of the bounded
         queue, exactly as in the single server. *)
      st.stats.Stats.limit_shed <- st.stats.Stats.limit_shed + 1;
      ts.ts_stats.Stats.limit_shed <- ts.ts_stats.Stats.limit_shed + 1;
      trace_terminal st ts ~name:"shed_limit" ~ts_us:now r
    | _ ->
      let admitted, swept = Admission.offer_swept ts.ts_queue ~now_us:now r in
      drop_expired st ts ~ts_us:now swept;
      if not admitted then begin
        st.stats.Stats.shed <- st.stats.Stats.shed + 1;
        trace_terminal st ts ~name:"shed" ~ts_us:now r
      end
      else begin
        Option.iter Budget.deposit ts.ts_budget;
        ts.ts_inflight <- ts.ts_inflight + 1;
        if ts.ts_inflight > ts.ts_peak_inflight then
          ts.ts_peak_inflight <- ts.ts_inflight;
        if Option.is_some st.cfg.t_hedge_percentile then begin
          let e =
            { he_done = false; he_copies = 1; he_hedged = false; he_hedge_copy = None }
          in
          Hashtbl.replace st.entries r.Admission.rq_id e;
          match hedge_delay_us st with
          | Some d ->
            Event_loop.schedule st.loop ~at:(now +. d) (fun () ->
                maybe_hedge st ts e r)
          | None -> ()
        end;
        (* Same-time launch check, so simultaneous arrivals coalesce into one
           batch (ties dispatch in scheduling order). *)
        Event_loop.schedule st.loop ~at:now (fun () -> pass st)
      end
  end

(* --- Autoscaler control loop --- *)

let scale_up st =
  let now = now_us st in
  let rp = new_replica st ~ready_us:(now +. st.cfg.t_autoscale.Autoscaler.as_warmup_us) in
  Autoscaler.note_scaled st.scaler ~now_us:now ~decision:Autoscaler.Scale_up;
  let active = active_replicas st in
  if active > st.peak_replicas then st.peak_replicas <- active;
  st.scale_events <- (now, "scale_up", active) :: st.scale_events;
  Trace.instant st.tracer ~name:"scale_up" ~cat:"tenancy" ~pid:0 ~tid:0 ~ts_us:now
    ~args:[ "replica", Json.Int rp.rp_id; "ready_us", Json.Float rp.rp_ready_us ];
  (* The warmed-up replica looks for work the moment it is usable. *)
  Event_loop.schedule st.loop ~at:rp.rp_ready_us (fun () -> pass st)

let scale_down st =
  (* Highest-index active replica drains: ids stay dense at the bottom, so
     repeated up/down cycles reuse low pids. *)
  let victim = ref None in
  Array.iter (fun rp -> if rp.rp_state = Active then victim := Some rp) st.replicas;
  match !victim with
  | None -> ()
  | Some rp ->
    rp.rp_state <- Draining;
    Autoscaler.note_scaled st.scaler ~now_us:(now_us st)
      ~decision:Autoscaler.Scale_down;
    st.scale_events <- (now_us st, "scale_down", active_replicas st) :: st.scale_events;
    Trace.instant st.tracer ~name:"scale_down" ~cat:"tenancy" ~pid:0 ~tid:0
      ~ts_us:(now_us st)
      ~args:[ "replica", Json.Int rp.rp_id ];
    if not rp.rp_busy then retire st rp

let rec tick st () =
  let now = now_us st in
  let max_delay = ref 0.0 in
  Array.iter
    (fun ts ->
      let age =
        match Admission.oldest_arrival_us ts.ts_queue with
        | Some a -> now -. a
        | None -> 0.0
      in
      ts.ts_delay_ewma_us <- (0.5 *. ts.ts_delay_ewma_us) +. (0.5 *. age);
      if ts.ts_delay_ewma_us > !max_delay then max_delay := ts.ts_delay_ewma_us)
    st.tenants;
  (match
     Autoscaler.decide st.scaler ~now_us:now ~replicas:(active_replicas st)
       ~max_queue_delay_us:!max_delay
   with
  | Autoscaler.Hold -> ()
  | Autoscaler.Scale_up -> scale_up st
  | Autoscaler.Scale_down -> scale_down st);
  (* The control loop rides the event queue and stops rescheduling once it
     is the only pending work, so the simulation drains. *)
  if Event_loop.pending st.loop > 0 then
    Event_loop.schedule_after st.loop ~delay:st.cfg.t_autoscale.Autoscaler.as_interval_us
      (tick st)

(* --- Reports --- *)

type tenant_view = {
  tv_tenant : Tenant.t;
  tv_stats : Stats.t;
  tv_peak_inflight : int;
}

type report = {
  tn_stats : Stats.t;  (** Aggregate across tenants, event-ordered. *)
  tn_tenants : tenant_view list;
  tn_scale_events : (float * string * int) list;
      (** (virtual time, "scale_up"/"scale_down", active replicas after). *)
  tn_peak_replicas : int;
  tn_final_replicas : int;
  tn_swaps : int;
  tn_busy_us : float;  (** Summed device-occupied time across replicas. *)
}

(** Device utilization over the run: busy time across the pool divided by
    peak-pool capacity (a conservative denominator — retired replicas still
    count until the end). *)
let utilization (r : report) =
  let span = r.tn_stats.Stats.end_us in
  if span <= 0.0 || r.tn_peak_replicas = 0 then 0.0
  else r.tn_busy_us /. (span *. float_of_int r.tn_peak_replicas)

(** Run the multi-tenant simulation to completion.

    [tenants] is the registry; each tenant's arrival stream is drawn from
    its own traffic process with its own seed (or taken verbatim from
    [arrivals] when given — one monotone array per tenant). [payload]
    builds request payloads from (tenant index, per-tenant request index,
    global request id); [execute] runs one single-model batch on a replica;
    [model_bytes] sizes each model's parameters for the swap penalty.

    Global request ids number the merged arrival stream in (time, tenant)
    order, so traces, chaos invariants and payload poison lists all speak
    the same id space. *)
let simulate ?(tracer = Trace.null) ?(metrics = Metrics.null)
    ?(snapshot_every_us = 10_000.0) ?arrivals ?auditor (cfg : config)
    ~(tenants : Tenant.t array)
    ~(payload : tenant:int -> index:int -> id:int -> 'a)
    ~(execute : int -> model:string -> 'a list -> Server.exec_result)
    ~(model_bytes : string -> int) : report =
  if Array.length tenants = 0 then Fmt.invalid_arg "Dispatcher.simulate: no tenants";
  Array.iter (fun t -> ignore (Tenant.validate t)) tenants;
  let loop = Event_loop.create (Clock.create ()) in
  let st =
    {
      cfg;
      loop;
      tenants =
        Array.map
          (fun t ->
            let rs = cfg.t_resilience in
            {
              ts_tenant = t;
              ts_queue =
                Admission.create
                  ~eager_sweep:(Resilience.active rs)
                  ~capacity:cfg.t_server.Server.queue_capacity ();
              ts_batcher = Batcher.create ~cost:cfg.t_server.Server.cost cfg.t_server.Server.policy;
              ts_stats = Stats.create ();
              ts_inflight = 0;
              ts_peak_inflight = 0;
              ts_delay_ewma_us = 0.0;
              ts_budget =
                Option.map (fun frac -> Budget.create ~frac) rs.Resilience.rs_retry_budget;
              ts_limiter =
                Option.map
                  (fun target_us -> Limiter.create ~target_us ())
                  rs.Resilience.rs_target_delay_us;
              ts_breaker = Closed;
              ts_consec_failures = 0;
            })
          tenants;
      fair = Fairshare.create ~weights:(Array.map (fun t -> t.Tenant.tn_weight) tenants);
      scaler = Autoscaler.create cfg.t_autoscale;
      replicas = [||];
      stats = Stats.create ();
      execute;
      auditor;
      model_bytes;
      pmax = Server.policy_max_batch cfg.t_server.Server.policy;
      scale_events = [];
      peak_replicas = 0;
      tracer;
      entries = Hashtbl.create 64;
      lat_ring = Array.make Cluster.hedge_window 0.0;
      lat_count = 0;
      lat_idx = 0;
    }
  in
  if Trace.enabled tracer then begin
    Trace.name_process tracer ~pid:0 ~name:"dispatcher";
    Trace.name_thread tracer ~pid:0 ~tid:0 ~name:"control"
  end;
  for _ = 1 to cfg.t_autoscale.Autoscaler.as_min do
    ignore (new_replica st ~ready_us:0.0)
  done;
  st.peak_replicas <- active_replicas st;
  (* Merge the per-tenant arrival streams into one globally-ordered,
     globally-numbered schedule. *)
  let streams =
    match arrivals with
    | Some a ->
      if Array.length a <> Array.length tenants then
        Fmt.invalid_arg "Dispatcher.simulate: %d arrival streams for %d tenants"
          (Array.length a) (Array.length tenants);
      a
    | None ->
      Array.map
        (fun t ->
          let rng = Rng.create ((t.Tenant.tn_seed * 53) + 11) in
          Traffic.arrivals ~rng (Tenant.process t) ~n:t.Tenant.tn_requests)
        tenants
  in
  let merged = ref [] in
  Array.iteri
    (fun ti a -> Array.iteri (fun k at -> merged := (at, ti, k) :: !merged) a)
    streams;
  let merged =
    List.sort
      (fun (ta, ia, ka) (tb, ib, kb) ->
        match Float.compare ta tb with
        | 0 -> ( match Int.compare ia ib with 0 -> Int.compare ka kb | c -> c)
        | c -> c)
      !merged
  in
  List.iteri
    (fun id (at, ti, k) ->
      let ts = st.tenants.(ti) in
      let r =
        {
          Admission.rq_id = id;
          rq_payload = payload ~tenant:ti ~index:k ~id;
          rq_arrival_us = at;
          rq_deadline_us =
            Option.map (fun d -> at +. d) (Tenant.slo_us ts.ts_tenant);
        }
      in
      Event_loop.schedule loop ~at (fun () -> on_arrival st ts r))
    merged;
  (* The control loop only matters when the pool can actually change. *)
  if cfg.t_autoscale.Autoscaler.as_max > cfg.t_autoscale.Autoscaler.as_min then
    Event_loop.schedule_after loop ~delay:cfg.t_autoscale.Autoscaler.as_interval_us
      (tick st);
  (* A launch pass at the heal instant re-admits partitioned replicas even
     when no completion or arrival lands right then. *)
  (match cfg.t_net with
  | Some plan -> (
    Net.validate plan;
    match Net.partition_window plan with
    | Some (_, t1) -> Event_loop.schedule loop ~at:t1 (fun () -> pass st)
    | None -> ())
  | None -> ());
  if Metrics.enabled metrics then begin
    let rec snap () =
      Stats.to_metrics st.stats metrics;
      Metrics.snapshot metrics ~ts_us:(Event_loop.now loop);
      if Event_loop.pending loop > 0 then
        Event_loop.schedule_after loop ~delay:snapshot_every_us snap
    in
    Event_loop.schedule_after loop ~delay:snapshot_every_us snap
  end;
  Event_loop.run loop;
  let end_us = Event_loop.now loop in
  (* Anything still queued when the run drains is conserved as a
     budget-exhausted terminal, exactly like the cluster's parked queue. *)
  Array.iter
    (fun ts ->
      let leftovers, dropped = Admission.drain ts.ts_queue ~now_us:end_us in
      drop_expired st ts ~ts_us:end_us dropped;
      List.iter
        (fun (r : 'a Admission.request) ->
          if copy_drop_terminal st r then begin
            st.stats.Stats.breaker_shed <- st.stats.Stats.breaker_shed + 1;
            ts.ts_stats.Stats.breaker_shed <- ts.ts_stats.Stats.breaker_shed + 1;
            ts.ts_inflight <- ts.ts_inflight - 1;
            trace_terminal st ts ~name:"budget_exhausted" ~ts_us:end_us r
          end)
        leftovers)
    st.tenants;
  let views =
    Array.to_list
      (Array.map
         (fun ts ->
           ts.ts_stats.Stats.shed <- Admission.shed_count ts.ts_queue;
           ts.ts_stats.Stats.expired <- Admission.expired_count ts.ts_queue;
           ts.ts_stats.Stats.end_us <- end_us;
           {
             tv_tenant = ts.ts_tenant;
             tv_stats = ts.ts_stats;
             tv_peak_inflight = ts.ts_peak_inflight;
           })
         st.tenants)
  in
  st.stats.Stats.end_us <- end_us;
  st.stats.Stats.clamped_schedules <- Event_loop.clamped_count loop;
  st.stats.Stats.loop_events <- Event_loop.dispatched loop;
  Stats.to_metrics st.stats metrics;
  {
    tn_stats = st.stats;
    tn_tenants = views;
    tn_scale_events = List.rev st.scale_events;
    tn_peak_replicas = st.peak_replicas;
    tn_final_replicas = active_replicas st;
    tn_swaps = Array.fold_left (fun n rp -> n + rp.rp_swaps) 0 st.replicas;
    tn_busy_us = Array.fold_left (fun b rp -> b +. rp.rp_busy_us) 0.0 st.replicas;
  }

(** JSON shape shared by [acrobatc serve --tenant --json] and
    [bench tenants]: aggregate summary, per-tenant summaries with SLO
    attainment and quota observations, and the scale-event trajectory. *)
let report_json (r : report) : Json.t =
  let tenant_json (tv : tenant_view) =
    let s = Stats.summarize tv.tv_stats in
    Json.Obj
      [
        "name", Json.Str tv.tv_tenant.Tenant.tn_name;
        "model", Json.Str tv.tv_tenant.Tenant.tn_model;
        "weight", Json.Float tv.tv_tenant.Tenant.tn_weight;
        "quota", Json.Int tv.tv_tenant.Tenant.tn_quota;
        "peak_inflight", Json.Int tv.tv_peak_inflight;
        "slo_ms", Json.Float tv.tv_tenant.Tenant.tn_slo_ms;
        "goodput", Json.Float (Stats.goodput s);
        "slo_attainment", Json.Float (Stats.slo_attainment s);
        "summary", Stats.summary_to_json s;
      ]
  in
  let scale_json (ts_us, kind, replicas) =
    Json.Obj
      [
        "ts_us", Json.Float ts_us;
        "event", Json.Str kind;
        "replicas", Json.Int replicas;
      ]
  in
  let s = Stats.summarize r.tn_stats in
  Json.Obj
    [
      "summary", Stats.summary_to_json s;
      "goodput", Json.Float (Stats.goodput s);
      "slo_attainment", Json.Float (Stats.slo_attainment s);
      "utilization", Json.Float (utilization r);
      "peak_replicas", Json.Int r.tn_peak_replicas;
      "final_replicas", Json.Int r.tn_final_replicas;
      "swaps", Json.Int r.tn_swaps;
      "tenants", Json.List (List.map tenant_json r.tn_tenants);
      "scale_events", Json.List (List.map scale_json r.tn_scale_events);
    ]
