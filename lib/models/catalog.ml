(** The evaluation model zoo (paper Table 3). *)

type entry = { id : string; make : Model.size -> Model.t; has_tdc : bool }

let all : entry list =
  [
    { id = "treelstm"; make = (fun s -> Treelstm.make s); has_tdc = false };
    { id = "mvrnn"; make = (fun s -> Mvrnn.make s); has_tdc = false };
    { id = "birnn"; make = (fun s -> Birnn.make s); has_tdc = false };
    { id = "nestedrnn"; make = (fun s -> Nestedrnn.make s); has_tdc = true };
    { id = "drnn"; make = (fun s -> Drnn.make s); has_tdc = true };
    { id = "berxit"; make = (fun s -> Berxit.make s); has_tdc = true };
    { id = "stackrnn"; make = (fun s -> Stackrnn.make s); has_tdc = true };
  ]

(** Additional dynamic computations from the paper's Table 2 survey (not in
    its Table 3 evaluation). *)
let extras : entry list =
  [
    { id = "beamsearch"; make = (fun s -> Beam_search.make s); has_tdc = true };
    { id = "moe"; make = (fun s -> Moe.make s); has_tdc = true };
  ]

let find id =
  match List.find_opt (fun e -> e.id = id) (all @ extras) with
  | Some e -> e
  | None -> Fmt.invalid_arg "unknown model %S" id

(** Models with small/scaled dimensions for fast tests and examples. *)
let tiny id : Model.t =
  match id with
  | "rnn" -> Rnn.make ~hidden:16 ~classes:4 Model.Small
  | "treelstm" -> Treelstm.make ~hidden:8 ~classes:3 Model.Small
  | "mvrnn" -> Mvrnn.make ~hidden:8 ~classes:3 Model.Small
  | "birnn" -> Birnn.make ~hidden:8 ~classes:4 Model.Small
  | "nestedrnn" -> Nestedrnn.make ~hidden:8 Model.Small
  | "drnn" -> Drnn.make ~hidden:8 ~max_depth:4 Model.Small
  | "berxit" -> Berxit.make ~dims:(4, 16, 32, 8) Model.Small
  | "stackrnn" -> Stackrnn.make ~hidden:8 Model.Small
  | "beamsearch" -> Beam_search.make ~hidden:8 ~vocab:8 ~beam_width:3 Model.Small
  | "moe" -> Moe.make ~hidden:8 Model.Small
  | other -> Fmt.invalid_arg "unknown tiny model %S" other

let tiny_ids =
  [ "rnn"; "treelstm"; "mvrnn"; "birnn"; "nestedrnn"; "drnn"; "berxit"; "stackrnn";
    "beamsearch"; "moe" ]
