(** SLO accounting for serving runs: per-request latency percentiles with a
    queue-wait vs compute breakdown, throughput, drop rates — plus the
    merged device {!Acrobat_device.Profiler} so a serving run prints the
    same activity report as the offline bench tables. *)

module Profiler = Acrobat_device.Profiler
module Rng = Acrobat_tensor.Rng

(** One completed request's life cycle, all in virtual microseconds. *)
type record = {
  r_id : int;
  r_arrival_us : float;
  r_start_us : float;  (** Batch launch time: queue wait ends here. *)
  r_done_us : float;  (** Batch completion: response leaves the server. *)
  r_batch_size : int;  (** Size of the batch this request rode in. *)
}

(* --- bounded-memory streaming mode ---

   A 10⁶-request campaign must not retain 10⁶ latency records just to
   print three percentiles at the end. Below [streaming_threshold]
   completions, nothing changes: every record is kept and {!summarize}
   computes exact percentiles — the exact-until-K contract that keeps all
   legacy-sized runs byte-identical. The completion that crosses the
   threshold converts the stream in place: the retained records are
   replayed (oldest first) into one-pass mean accumulators and a
   fixed-seed reservoir (Vitter's Algorithm R) over latencies, the record
   list is dropped, and every later completion is absorbed in O(1) with
   bounded memory. Means stay exact in streaming mode (running sums in
   completion order — the same float addition order as the exact path);
   percentiles become reservoir estimates over [reservoir_capacity]
   samples. The reservoir RNG is seeded by a constant and consumed only
   by completion index, so summaries are deterministic and independent of
   {e when} the conversion happened. *)

let default_streaming_threshold = 100_000
let streaming_threshold = ref default_streaming_threshold

(** Completions retained exactly before streaming engages (global, like
    {!Event_loop.set_debug_checks}, so harnesses can arm it without
    threading a knob through every [create]). *)
let set_streaming_threshold k =
  if k < 1 then Fmt.invalid_arg "Stats.set_streaming_threshold: %d < 1" k;
  streaming_threshold := k

let current_streaming_threshold () = !streaming_threshold

(** Latency samples kept for streaming percentiles. The standard error of
    a p99 estimate over 8192 uniform samples is ~0.11% of rank — well
    inside the nearest-rank quantization of the exact path at 10⁶. *)
let reservoir_capacity = 8192

let reservoir_seed = 0x5eed

type t = {
  mutable records : record list;  (** Reverse completion order (exact mode). *)
  mutable n_records : int;  (** Completions recorded, exact + streamed. *)
  mutable streaming : bool;
  mutable st_first_arrival_us : float;  (** Arrival of the first completion. *)
  mutable st_last_done_us : float;
  mutable st_sum_latency_ms : float;
  mutable st_sum_queue_ms : float;
  mutable st_sum_compute_ms : float;
  mutable reservoir : float array;  (** Latency samples (ms); allocated lazily. *)
  mutable reservoir_len : int;
  res_rng : Rng.t;
  mutable batches : int;
  mutable batched_requests : int;
  mutable shed : int;
  mutable expired : int;
  mutable end_us : float;  (** Virtual time when the simulation drained. *)
  profiler : Profiler.t;  (** Merged across every executed batch. *)
  (* Fault-tolerance accounting; all zero on a fault-free run. *)
  mutable fault_batches : int;  (** Batch attempts that failed. *)
  mutable retries : int;  (** Re-executions after a transient failure. *)
  mutable bisections : int;  (** Failed batches split to isolate poison. *)
  mutable poisoned : int;  (** Requests dropped after isolation. *)
  mutable breaker_opens : int;  (** Circuit-breaker open transitions. *)
  mutable breaker_shed : int;  (** Requests refused while the breaker was open. *)
  mutable degraded_batches : int;  (** Batches served in degraded mode. *)
  (* Cluster accounting; all zero on single-server runs. *)
  mutable failovers : int;  (** Replicas marked down by the health monitor. *)
  mutable requeued : int;  (** Requests drained off a dead replica and re-dispatched. *)
  mutable probes : int;  (** Re-admission probe requests routed to a down replica. *)
  mutable readmitted : int;  (** Probes that restored their replica to healthy. *)
  mutable hedges : int;  (** Speculative duplicate requests issued. *)
  mutable hedge_wins : int;  (** Requests whose hedge copy finished first. *)
  mutable hedge_cancels : int;  (** Hedge copies cancelled before execution. *)
  mutable hedge_wasted : int;
      (** Completions of a hedged request that arrived after its winner —
          duplicated device work, whichever copy was late. *)
  mutable clamped_schedules : int;
      (** Event-loop schedules whose requested time was in the past (see
          {!Event_loop.clamped_count}); always zero for a correct
          simulation, so any nonzero value flags a scheduling bug. *)
  mutable loop_events : int;
      (** Total event-loop dispatches the simulation performed — the
          simulator-throughput numerator [bench scale] divides by wall
          time. Diagnostic only: never serialized or printed. *)
  (* Multi-tenant accounting; all zero outside the tenancy dispatcher. *)
  mutable quota_shed : int;  (** Requests refused at their tenant's inflight quota. *)
  mutable swaps : int;  (** Resident-model swaps this stream's batches paid for. *)
  mutable slo_ok : int;  (** Completions that landed within their SLO deadline. *)
  (* Overload-resilience accounting (lib/resilience); all zero unless the
     resilience layer is armed. *)
  mutable limit_shed : int;  (** Refused by the adaptive concurrency limiter. *)
  mutable retry_shed : int;  (** Requests dropped when the retry budget ran dry. *)
  mutable retried_requests : int;
      (** Requests re-executed under the retry budget — the numerator of the
          retry-amplification bound the chaos invariants check. *)
  mutable brownouts : int;  (** Brownout engage transitions. *)
  mutable brownout_restores : int;  (** Brownout restore transitions. *)
  (* Result-integrity accounting (silent-data-corruption defense); all zero
     unless corruption injection or the audit layer is armed. *)
  mutable corrupted_batches : int;
      (** Batch attempts whose outputs were silently corrupted (injector
          ground truth — the serving layer cannot observe this directly). *)
  mutable corrupted_delivered : int;
      (** Corrupted results that reached a client undetected — the number
          the audit layer exists to drive to zero. *)
  mutable audits : int;  (** Requests re-executed unbatched for verification. *)
  mutable audit_mismatches : int;
      (** Audits whose reference fingerprint disagreed with the delivered
          candidate — detected corruption. *)
  mutable quarantines : int;  (** Replicas quarantined on corruption evidence. *)
  mutable quarantine_restores : int;
      (** Quarantined replicas re-admitted after clean audited probes. *)
  (* Network fault-domain accounting (lib/net); all zero unless a net plan
     is armed, so direct-call runs stay byte-stable. The counters are laid
     out so the chaos conservation oracles close from the summary alone:
     [sends = partition_drops + drops + (deliveries - dups)] on the request
     link, [deliveries = fresh + dedup_hits] at the replica ingress, and
     [acks = ack_deliveries + ack_drops + gray_drops] on the return link. *)
  mutable net_sends : int;  (** Logical request sends entering the link (incl. resends). *)
  mutable net_resends : int;  (** Timeout-driven retransmissions (subset of sends). *)
  mutable net_dups : int;  (** Extra delivered copies beyond each send's first. *)
  mutable net_drops : int;  (** Request sends lost to random loss. *)
  mutable net_partition_drops : int;  (** Request sends blocked by an active partition. *)
  mutable net_deliveries : int;  (** Request copies that reached a replica. *)
  mutable net_fresh : int;  (** Deliveries handed to the replica (not deduped). *)
  mutable net_dedup_hits : int;  (** Deliveries filtered by the idempotency window. *)
  mutable net_acks : int;  (** Completions entering the return link. *)
  mutable net_ack_drops : int;  (** Completions lost (random loss or partition). *)
  mutable net_gray_drops : int;  (** Completions lost to the gray link. *)
  mutable net_ack_deliveries : int;  (** Completions that reached the dispatcher. *)
  mutable net_timeouts : int;  (** Per-attempt timeouts that fired live. *)
  mutable net_shed : int;
      (** Requests shed at the sender because the remaining deadline budget
          could not cover the observed one-way delay EWMA — a terminal
          (joins offered/drop-rate conservation). *)
  mutable net_link_downs : int;  (** Links declared unreachable on consecutive timeouts. *)
  mutable net_heals : int;  (** Unreachable links restored by a probe round-trip. *)
  mutable net_probes : int;  (** Link-probe messages issued while unreachable. *)
}

let create () =
  {
    records = [];
    n_records = 0;
    streaming = false;
    st_first_arrival_us = 0.0;
    st_last_done_us = 0.0;
    st_sum_latency_ms = 0.0;
    st_sum_queue_ms = 0.0;
    st_sum_compute_ms = 0.0;
    reservoir = [||];
    reservoir_len = 0;
    res_rng = Rng.create reservoir_seed;
    batches = 0;
    batched_requests = 0;
    shed = 0;
    expired = 0;
    end_us = 0.0;
    profiler = Profiler.create ();
    fault_batches = 0;
    retries = 0;
    bisections = 0;
    poisoned = 0;
    breaker_opens = 0;
    breaker_shed = 0;
    degraded_batches = 0;
    failovers = 0;
    requeued = 0;
    probes = 0;
    readmitted = 0;
    hedges = 0;
    hedge_wins = 0;
    hedge_cancels = 0;
    hedge_wasted = 0;
    clamped_schedules = 0;
    loop_events = 0;
    quota_shed = 0;
    swaps = 0;
    slo_ok = 0;
    limit_shed = 0;
    retry_shed = 0;
    retried_requests = 0;
    brownouts = 0;
    brownout_restores = 0;
    corrupted_batches = 0;
    corrupted_delivered = 0;
    audits = 0;
    audit_mismatches = 0;
    quarantines = 0;
    quarantine_restores = 0;
    net_sends = 0;
    net_resends = 0;
    net_dups = 0;
    net_drops = 0;
    net_partition_drops = 0;
    net_deliveries = 0;
    net_fresh = 0;
    net_dedup_hits = 0;
    net_acks = 0;
    net_ack_drops = 0;
    net_gray_drops = 0;
    net_ack_deliveries = 0;
    net_timeouts = 0;
    net_shed = 0;
    net_link_downs = 0;
    net_heals = 0;
    net_probes = 0;
  }

let streaming_active t = t.streaming

(* Absorb one completion into the streaming accumulators. [i] is the
   0-based completion index — also the Algorithm-R sample count, so the
   reservoir's RNG consumption depends only on the index sequence, never
   on when the exact→streaming conversion fired. Takes bare fields so the
   hot path ({!record_fields}) never allocates a [record] in streaming
   mode. *)
let stream_absorb_fields t i ~arrival_us ~start_us ~done_us =
  if i = 0 then t.st_first_arrival_us <- arrival_us;
  if done_us > t.st_last_done_us then t.st_last_done_us <- done_us;
  let lat = (done_us -. arrival_us) /. 1000.0 in
  t.st_sum_latency_ms <- t.st_sum_latency_ms +. lat;
  t.st_sum_queue_ms <- t.st_sum_queue_ms +. ((start_us -. arrival_us) /. 1000.0);
  t.st_sum_compute_ms <- t.st_sum_compute_ms +. ((done_us -. start_us) /. 1000.0);
  if t.reservoir_len < reservoir_capacity then begin
    t.reservoir.(t.reservoir_len) <- lat;
    t.reservoir_len <- t.reservoir_len + 1
  end
  else begin
    let j = Rng.int t.res_rng (i + 1) in
    if j < reservoir_capacity then t.reservoir.(j) <- lat
  end

let stream_absorb t i (r : record) =
  stream_absorb_fields t i ~arrival_us:r.r_arrival_us ~start_us:r.r_start_us
    ~done_us:r.r_done_us

(* One-time exact→streaming conversion: replay the retained records in
   completion order, then drop them. *)
let convert_to_streaming t =
  t.reservoir <- Array.make reservoir_capacity 0.0;
  let arr = Array.of_list t.records in
  let n = Array.length arr in
  (* [t.records] is reverse completion order: replay from the back. *)
  for k = n - 1 downto 0 do
    stream_absorb t (n - 1 - k) arr.(k)
  done;
  t.records <- [];
  t.streaming <- true

(** Record one completion from bare fields — the allocation-free hot
    path. In streaming mode (the regime million-request runs live in) no
    [record] is ever built; in exact mode one is, because retention for
    exact percentiles requires it. Complete paths in [Server], [Cluster]
    and the tenancy dispatcher call this instead of boxing a [record]
    per request (ROADMAP §1 hot-path follow-up). *)
let record_fields t ~id ~arrival_us ~start_us ~done_us ~batch_size =
  if t.streaming then begin
    stream_absorb_fields t t.n_records ~arrival_us ~start_us ~done_us;
    t.n_records <- t.n_records + 1
  end
  else begin
    t.records <-
      {
        r_id = id;
        r_arrival_us = arrival_us;
        r_start_us = start_us;
        r_done_us = done_us;
        r_batch_size = batch_size;
      }
      :: t.records;
    t.n_records <- t.n_records + 1;
    if t.n_records > !streaming_threshold then convert_to_streaming t
  end

let record t (r : record) =
  record_fields t ~id:r.r_id ~arrival_us:r.r_arrival_us ~start_us:r.r_start_us
    ~done_us:r.r_done_us ~batch_size:r.r_batch_size

let note_batch t ~size ~profiler =
  t.batches <- t.batches + 1;
  t.batched_requests <- t.batched_requests + size;
  Option.iter (fun p -> Profiler.merge ~into:t.profiler p) profiler

(** Nearest-rank percentile of an already-sorted sample; 0 on an empty one.
    The workhorse behind {!percentile}: callers that need several
    percentiles of one sample (e.g. {!summarize}'s p50/p95/p99) sort once
    and query this repeatedly instead of paying a copy+sort per call. *)
let percentile_sorted (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(** Nearest-rank percentile of an unsorted sample; 0 on an empty one. *)
let percentile (xs : float array) (p : float) : float =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

type summary = {
  s_offered : int;  (** Arrivals, including dropped ones. *)
  s_completed : int;
  s_shed : int;  (** Load-shed at admission (queue full). *)
  s_expired : int;  (** Deadline passed while queued. *)
  s_makespan_ms : float;  (** First arrival to last completion. *)
  s_throughput_rps : float;  (** Completions per (virtual) second. *)
  s_p50_ms : float;
  s_p95_ms : float;
  s_p99_ms : float;
  s_mean_ms : float;
  s_mean_queue_ms : float;  (** Mean arrival -> batch-launch wait. *)
  s_mean_compute_ms : float;  (** Mean batch-launch -> completion time. *)
  s_batches : int;
  s_mean_batch : float;  (** Mean executed batch size. *)
  (* Fault-tolerance block; all zero (and omitted from output) when the run
     saw no faults. *)
  s_fault_batches : int;
  s_retries : int;
  s_bisections : int;
  s_poisoned : int;  (** Requests dropped as poison after bisection. *)
  s_breaker_opens : int;
  s_breaker_shed : int;
  s_degraded_batches : int;
  (* Cluster block; all zero (and omitted from output) on single-server
     runs, so single-server output stays byte-stable. *)
  s_failovers : int;
  s_requeued : int;
  s_probes : int;
  s_readmitted : int;
  s_hedges : int;
  s_hedge_wins : int;
  s_hedge_cancels : int;
  s_hedge_wasted : int;
  s_clamped_schedules : int;
      (** Past-time event-loop schedules; nonzero flags a scheduling bug
          (printed/serialized only when it fires, so healthy output is
          unchanged). *)
  (* Tenancy block; all zero (and omitted from output) outside the
     multi-tenant dispatcher, so pre-tenancy output stays byte-stable. *)
  s_quota_shed : int;  (** Refused at the tenant's inflight quota. *)
  s_swaps : int;  (** Resident-model swaps charged to this stream. *)
  s_slo_ok : int;  (** Completions within their SLO deadline. *)
  (* Resilience block; all zero (and omitted from output) unless the
     overload-resilience layer is armed, so legacy output stays
     byte-stable. *)
  s_limit_shed : int;  (** Refused by the adaptive concurrency limiter. *)
  s_retry_shed : int;  (** Dropped when the retry budget ran dry. *)
  s_retried_requests : int;  (** Requests re-executed under the budget. *)
  s_brownouts : int;
  s_brownout_restores : int;
  (* Integrity block; all zero (and omitted from output) unless corruption
     injection or the audit layer engaged, so legacy output stays
     byte-stable. *)
  s_corrupted_batches : int;  (** Corrupted batch attempts (injector ground truth). *)
  s_corrupted_delivered : int;  (** Corrupted results delivered undetected. *)
  s_audits : int;  (** Requests re-executed unbatched for verification. *)
  s_audit_mismatches : int;  (** Audits that caught a corrupted result. *)
  s_quarantines : int;  (** Replicas quarantined on corruption evidence. *)
  s_quarantine_restores : int;  (** Quarantined replicas re-admitted. *)
  (* Network block; all zero (and omitted from output) unless a net plan
     is armed, so direct-call output stays byte-stable. *)
  s_net_sends : int;
  s_net_resends : int;
  s_net_dups : int;
  s_net_drops : int;
  s_net_partition_drops : int;
  s_net_deliveries : int;
  s_net_fresh : int;
  s_net_dedup_hits : int;
  s_net_acks : int;
  s_net_ack_drops : int;
  s_net_gray_drops : int;
  s_net_ack_deliveries : int;
  s_net_timeouts : int;
  s_net_shed : int;  (** Sender-side deadline sheds (terminal). *)
  s_net_link_downs : int;
  s_net_heals : int;
  s_net_probes : int;
}

(** Availability: the fraction of offered requests actually answered. *)
let goodput (s : summary) =
  if s.s_offered = 0 then 1.0 else float_of_int s.s_completed /. float_of_int s.s_offered

(** True when any fault-tolerance machinery engaged during the run. *)
let fault_active (s : summary) =
  s.s_fault_batches > 0 || s.s_retries > 0 || s.s_bisections > 0 || s.s_poisoned > 0
  || s.s_breaker_opens > 0 || s.s_breaker_shed > 0 || s.s_degraded_batches > 0

(** True when any cluster machinery (failover, probing, hedging) engaged. *)
let cluster_active (s : summary) =
  s.s_failovers > 0 || s.s_requeued > 0 || s.s_probes > 0 || s.s_readmitted > 0
  || s.s_hedges > 0 || s.s_hedge_wins > 0 || s.s_hedge_cancels > 0 || s.s_hedge_wasted > 0

(** True when the multi-tenant dispatcher produced this stream. *)
let tenancy_active (s : summary) = s.s_quota_shed > 0 || s.s_swaps > 0 || s.s_slo_ok > 0

(** True when the overload-resilience layer engaged during the run. *)
let resilience_active (s : summary) =
  s.s_limit_shed > 0 || s.s_retry_shed > 0 || s.s_retried_requests > 0
  || s.s_brownouts > 0 || s.s_brownout_restores > 0

(** True when corruption injection or the audit layer engaged. *)
let integrity_active (s : summary) =
  s.s_corrupted_batches > 0 || s.s_corrupted_delivered > 0 || s.s_audits > 0
  || s.s_audit_mismatches > 0 || s.s_quarantines > 0 || s.s_quarantine_restores > 0

(** True when the network fault domain carried any traffic. *)
let net_active (s : summary) =
  s.s_net_sends > 0 || s.s_net_acks > 0 || s.s_net_shed > 0 || s.s_net_timeouts > 0
  || s.s_net_probes > 0

(** Fraction of completions that met their SLO deadline (1 when nothing
    completed — an empty stream violated nothing). *)
let slo_attainment (s : summary) =
  if s.s_completed = 0 then 1.0 else float_of_int s.s_slo_ok /. float_of_int s.s_completed

let summarize (t : t) : summary =
  let n, p50, p95, p99, mean_ms, mean_queue_ms, mean_compute_ms, makespan_us =
    if t.streaming then begin
      (* Streaming mode: means from the exact running sums, percentiles
         from the sorted reservoir sample. *)
      let n = t.n_records in
      let sorted = Array.sub t.reservoir 0 t.reservoir_len in
      Array.sort Float.compare sorted;
      let fn = float_of_int n in
      ( n,
        percentile_sorted sorted 50.0,
        percentile_sorted sorted 95.0,
        percentile_sorted sorted 99.0,
        t.st_sum_latency_ms /. fn,
        t.st_sum_queue_ms /. fn,
        t.st_sum_compute_ms /. fn,
        t.st_last_done_us -. t.st_first_arrival_us )
    end
    else begin
      (* Exact mode. [t.records] is reverse completion order; fill the
         arrays from the back while walking it once, so completion order is
         restored without building the reversed list or any per-mean
         intermediate list. Sums then run in ascending (completion) order —
         the same float addition order as before, keeping summaries
         bit-identical across the rewrite. *)
      let n = t.n_records in
      let latencies = Array.make n 0.0 in
      let queue_waits = Array.make n 0.0 in
      let computes = Array.make n 0.0 in
      let first_arrival_us = ref 0.0 in
      let last_done_us = ref 0.0 in
      let i = ref (n - 1) in
      List.iter
        (fun r ->
          latencies.(!i) <- (r.r_done_us -. r.r_arrival_us) /. 1000.0;
          queue_waits.(!i) <- (r.r_start_us -. r.r_arrival_us) /. 1000.0;
          computes.(!i) <- (r.r_done_us -. r.r_start_us) /. 1000.0;
          if !i = 0 then first_arrival_us := r.r_arrival_us;
          if r.r_done_us > !last_done_us then last_done_us := r.r_done_us;
          decr i)
        t.records;
      (* One sort shared by every percentile below; [latencies] itself
         stays in completion order for the mean. *)
      let sorted_latencies = Array.copy latencies in
      Array.sort Float.compare sorted_latencies;
      let mean xs =
        if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n
      in
      let makespan_us = if n = 0 then 0.0 else !last_done_us -. !first_arrival_us in
      ( n,
        percentile_sorted sorted_latencies 50.0,
        percentile_sorted sorted_latencies 95.0,
        percentile_sorted sorted_latencies 99.0,
        mean latencies,
        mean queue_waits,
        mean computes,
        makespan_us )
    end
  in
  {
    s_offered =
      n + t.shed + t.expired + t.poisoned + t.breaker_shed + t.quota_shed
      + t.limit_shed + t.retry_shed + t.net_shed;
    s_completed = n;
    s_shed = t.shed;
    s_expired = t.expired;
    s_makespan_ms = makespan_us /. 1000.0;
    s_throughput_rps =
      (if makespan_us > 0.0 then float_of_int n /. (makespan_us /. 1.0e6) else 0.0);
    s_p50_ms = p50;
    s_p95_ms = p95;
    s_p99_ms = p99;
    s_mean_ms = mean_ms;
    s_mean_queue_ms = mean_queue_ms;
    s_mean_compute_ms = mean_compute_ms;
    s_batches = t.batches;
    s_mean_batch =
      (if t.batches = 0 then 0.0
       else float_of_int t.batched_requests /. float_of_int t.batches);
    s_fault_batches = t.fault_batches;
    s_retries = t.retries;
    s_bisections = t.bisections;
    s_poisoned = t.poisoned;
    s_breaker_opens = t.breaker_opens;
    s_breaker_shed = t.breaker_shed;
    s_degraded_batches = t.degraded_batches;
    s_failovers = t.failovers;
    s_requeued = t.requeued;
    s_probes = t.probes;
    s_readmitted = t.readmitted;
    s_hedges = t.hedges;
    s_hedge_wins = t.hedge_wins;
    s_hedge_cancels = t.hedge_cancels;
    s_hedge_wasted = t.hedge_wasted;
    s_clamped_schedules = t.clamped_schedules;
    s_quota_shed = t.quota_shed;
    s_swaps = t.swaps;
    s_slo_ok = t.slo_ok;
    s_limit_shed = t.limit_shed;
    s_retry_shed = t.retry_shed;
    s_retried_requests = t.retried_requests;
    s_brownouts = t.brownouts;
    s_brownout_restores = t.brownout_restores;
    s_corrupted_batches = t.corrupted_batches;
    s_corrupted_delivered = t.corrupted_delivered;
    s_audits = t.audits;
    s_audit_mismatches = t.audit_mismatches;
    s_quarantines = t.quarantines;
    s_quarantine_restores = t.quarantine_restores;
    s_net_sends = t.net_sends;
    s_net_resends = t.net_resends;
    s_net_dups = t.net_dups;
    s_net_drops = t.net_drops;
    s_net_partition_drops = t.net_partition_drops;
    s_net_deliveries = t.net_deliveries;
    s_net_fresh = t.net_fresh;
    s_net_dedup_hits = t.net_dedup_hits;
    s_net_acks = t.net_acks;
    s_net_ack_drops = t.net_ack_drops;
    s_net_gray_drops = t.net_gray_drops;
    s_net_ack_deliveries = t.net_ack_deliveries;
    s_net_timeouts = t.net_timeouts;
    s_net_shed = t.net_shed;
    s_net_link_downs = t.net_link_downs;
    s_net_heals = t.net_heals;
    s_net_probes = t.net_probes;
  }

let drop_rate (s : summary) =
  if s.s_offered = 0 then 0.0
  else
    float_of_int
      (s.s_shed + s.s_expired + s.s_poisoned + s.s_breaker_shed + s.s_quota_shed
      + s.s_limit_shed + s.s_retry_shed + s.s_net_shed)
    /. float_of_int s.s_offered

(* The fault block is emitted only when the machinery engaged: a fault-free
   run prints (and serializes) exactly what it did before the fault layer
   existed, keeping clean-path output byte-stable across versions. *)
let summary_to_json (s : summary) : Json.t =
  let base =
    [
      "offered", Json.Int s.s_offered;
      "completed", Json.Int s.s_completed;
      "shed", Json.Int s.s_shed;
      "expired", Json.Int s.s_expired;
      "makespan_ms", Json.Float s.s_makespan_ms;
      "throughput_rps", Json.Float s.s_throughput_rps;
      "p50_ms", Json.Float s.s_p50_ms;
      "p95_ms", Json.Float s.s_p95_ms;
      "p99_ms", Json.Float s.s_p99_ms;
      "mean_ms", Json.Float s.s_mean_ms;
      "mean_queue_ms", Json.Float s.s_mean_queue_ms;
      "mean_compute_ms", Json.Float s.s_mean_compute_ms;
      "batches", Json.Int s.s_batches;
      "mean_batch", Json.Float s.s_mean_batch;
      "drop_rate", Json.Float (drop_rate s);
    ]
  in
  let faults =
    if not (fault_active s) then []
    else
      [
        "fault_batches", Json.Int s.s_fault_batches;
        "retries", Json.Int s.s_retries;
        "bisections", Json.Int s.s_bisections;
        "poisoned", Json.Int s.s_poisoned;
        "breaker_opens", Json.Int s.s_breaker_opens;
        "breaker_shed", Json.Int s.s_breaker_shed;
        "degraded_batches", Json.Int s.s_degraded_batches;
        "goodput", Json.Float (goodput s);
      ]
  in
  let cluster =
    if not (cluster_active s) then []
    else
      [
        "failovers", Json.Int s.s_failovers;
        "requeued", Json.Int s.s_requeued;
        "probes", Json.Int s.s_probes;
        "readmitted", Json.Int s.s_readmitted;
        "hedges", Json.Int s.s_hedges;
        "hedge_wins", Json.Int s.s_hedge_wins;
        "hedge_cancels", Json.Int s.s_hedge_cancels;
        "hedge_wasted", Json.Int s.s_hedge_wasted;
      ]
  in
  let tenancy =
    if not (tenancy_active s) then []
    else
      [
        "quota_shed", Json.Int s.s_quota_shed;
        "swaps", Json.Int s.s_swaps;
        "slo_ok", Json.Int s.s_slo_ok;
        "slo_attainment", Json.Float (slo_attainment s);
      ]
  in
  let resilience =
    if not (resilience_active s) then []
    else
      [
        "limit_shed", Json.Int s.s_limit_shed;
        "retry_shed", Json.Int s.s_retry_shed;
        "retried_requests", Json.Int s.s_retried_requests;
        "brownouts", Json.Int s.s_brownouts;
        "brownout_restores", Json.Int s.s_brownout_restores;
      ]
  in
  let integrity =
    if not (integrity_active s) then []
    else
      [
        "corrupted_batches", Json.Int s.s_corrupted_batches;
        "corrupted_delivered", Json.Int s.s_corrupted_delivered;
        "audits", Json.Int s.s_audits;
        "audit_mismatches", Json.Int s.s_audit_mismatches;
        "quarantines", Json.Int s.s_quarantines;
        "quarantine_restores", Json.Int s.s_quarantine_restores;
      ]
  in
  let net =
    if not (net_active s) then []
    else
      [
        "net_sends", Json.Int s.s_net_sends;
        "net_resends", Json.Int s.s_net_resends;
        "net_dups", Json.Int s.s_net_dups;
        "net_drops", Json.Int s.s_net_drops;
        "net_partition_drops", Json.Int s.s_net_partition_drops;
        "net_deliveries", Json.Int s.s_net_deliveries;
        "net_fresh", Json.Int s.s_net_fresh;
        "net_dedup_hits", Json.Int s.s_net_dedup_hits;
        "net_acks", Json.Int s.s_net_acks;
        "net_ack_drops", Json.Int s.s_net_ack_drops;
        "net_gray_drops", Json.Int s.s_net_gray_drops;
        "net_ack_deliveries", Json.Int s.s_net_ack_deliveries;
        "net_timeouts", Json.Int s.s_net_timeouts;
        "net_shed", Json.Int s.s_net_shed;
        "net_link_downs", Json.Int s.s_net_link_downs;
        "net_heals", Json.Int s.s_net_heals;
        "net_probes", Json.Int s.s_net_probes;
      ]
  in
  let anomalies =
    if s.s_clamped_schedules = 0 then []
    else [ "clamped_schedules", Json.Int s.s_clamped_schedules ]
  in
  Json.Obj (base @ faults @ cluster @ tenancy @ resilience @ integrity @ net @ anomalies)

let pp_summary ppf (s : summary) =
  Fmt.pf ppf
    "@[<v>offered            %8d@,completed          %8d@,shed (queue full)  %8d@,\
     expired (deadline) %8d@,makespan           %8.2f ms@,throughput         %8.1f req/s@,\
     latency p50        %8.2f ms@,latency p95        %8.2f ms@,latency p99        %8.2f ms@,\
     latency mean       %8.2f ms@,queue wait (mean)  %8.2f ms@,compute (mean)     %8.2f ms@,\
     batches            %8d@,mean batch size    %8.2f"
    s.s_offered s.s_completed s.s_shed s.s_expired s.s_makespan_ms s.s_throughput_rps
    s.s_p50_ms s.s_p95_ms s.s_p99_ms s.s_mean_ms s.s_mean_queue_ms s.s_mean_compute_ms
    s.s_batches s.s_mean_batch;
  if fault_active s then
    Fmt.pf ppf
      "@,failed batches     %8d@,retries            %8d@,bisections         %8d@,\
       poisoned (dropped) %8d@,breaker opens      %8d@,breaker shed       %8d@,\
       degraded batches   %8d@,goodput            %8.1f %%"
      s.s_fault_batches s.s_retries s.s_bisections s.s_poisoned s.s_breaker_opens
      s.s_breaker_shed s.s_degraded_batches
      (100.0 *. goodput s);
  if cluster_active s then
    Fmt.pf ppf
      "@,failovers          %8d@,requeued           %8d@,probes             %8d@,\
       readmitted         %8d@,hedges issued      %8d@,hedge wins         %8d@,\
       hedge cancels      %8d@,hedge wasted       %8d"
      s.s_failovers s.s_requeued s.s_probes s.s_readmitted s.s_hedges s.s_hedge_wins
      s.s_hedge_cancels s.s_hedge_wasted;
  if tenancy_active s then
    Fmt.pf ppf
      "@,quota shed         %8d@,model swaps        %8d@,slo attained       %8.1f %%"
      s.s_quota_shed s.s_swaps
      (100.0 *. slo_attainment s);
  if resilience_active s then
    Fmt.pf ppf
      "@,limiter shed       %8d@,retry-budget shed  %8d@,retried requests   %8d@,\
       brownouts          %8d@,brownout restores  %8d"
      s.s_limit_shed s.s_retry_shed s.s_retried_requests s.s_brownouts
      s.s_brownout_restores;
  if integrity_active s then
    Fmt.pf ppf
      "@,corrupted batches  %8d@,corrupted delivered%8d@,audits             %8d@,\
       audit mismatches   %8d@,quarantines        %8d@,quarantine restores%8d"
      s.s_corrupted_batches s.s_corrupted_delivered s.s_audits s.s_audit_mismatches
      s.s_quarantines s.s_quarantine_restores;
  if net_active s then
    Fmt.pf ppf
      "@,net sends          %8d@,net resends        %8d@,net dups delivered %8d@,\
       net drops          %8d@,net partition drops%8d@,net deliveries     %8d@,\
       net dedup hits     %8d@,net acks lost      %8d@,net gray losses    %8d@,\
       net timeouts       %8d@,net deadline shed  %8d@,net link downs     %8d@,\
       net heals          %8d"
      s.s_net_sends s.s_net_resends s.s_net_dups s.s_net_drops s.s_net_partition_drops
      s.s_net_deliveries s.s_net_dedup_hits s.s_net_ack_drops s.s_net_gray_drops
      s.s_net_timeouts s.s_net_shed s.s_net_link_downs s.s_net_heals;
  if s.s_clamped_schedules > 0 then
    Fmt.pf ppf "@,clamped schedules  %8d  (scheduling bug?)" s.s_clamped_schedules;
  Fmt.pf ppf "@]"

(** Mirror the run's counters (and the merged device profiler's) into a
    metrics registry — the unification point between [Serve.Stats] and
    [Device.Profiler] telemetry. *)
let to_metrics (t : t) (m : Acrobat_obs.Metrics.t) =
  if not (Acrobat_obs.Metrics.enabled m) then ()
  else begin
  let s = summarize t in
  Acrobat_obs.Metrics.set_counters m "serve."
    [
      "offered", s.s_offered;
      "completed", s.s_completed;
      "shed", s.s_shed;
      "expired", s.s_expired;
      "batches", s.s_batches;
      "fault_batches", s.s_fault_batches;
      "retries", s.s_retries;
      "bisections", s.s_bisections;
      "poisoned", s.s_poisoned;
      "breaker_opens", s.s_breaker_opens;
      "breaker_shed", s.s_breaker_shed;
      "degraded_batches", s.s_degraded_batches;
      "failovers", s.s_failovers;
      "requeued", s.s_requeued;
      "probes", s.s_probes;
      "readmitted", s.s_readmitted;
      "hedges", s.s_hedges;
      "hedge_wins", s.s_hedge_wins;
      "hedge_cancels", s.s_hedge_cancels;
      "hedge_wasted", s.s_hedge_wasted;
      "clamped_schedules", s.s_clamped_schedules;
      "quota_shed", s.s_quota_shed;
      "swaps", s.s_swaps;
      "slo_ok", s.s_slo_ok;
      "limit_shed", s.s_limit_shed;
      "retry_shed", s.s_retry_shed;
      "retried_requests", s.s_retried_requests;
      "brownouts", s.s_brownouts;
      "brownout_restores", s.s_brownout_restores;
      "corrupted_batches", s.s_corrupted_batches;
      "corrupted_delivered", s.s_corrupted_delivered;
      "audits", s.s_audits;
      "audit_mismatches", s.s_audit_mismatches;
      "quarantines", s.s_quarantines;
      "quarantine_restores", s.s_quarantine_restores;
    ];
    (* Net counters appear only when the net layer carried traffic, so
       metrics snapshots from direct-call runs keep their exact key set. *)
    if net_active s then
      Acrobat_obs.Metrics.set_counters m "serve."
        [
          "net_sends", s.s_net_sends;
          "net_resends", s.s_net_resends;
          "net_dups", s.s_net_dups;
          "net_drops", s.s_net_drops;
          "net_partition_drops", s.s_net_partition_drops;
          "net_deliveries", s.s_net_deliveries;
          "net_fresh", s.s_net_fresh;
          "net_dedup_hits", s.s_net_dedup_hits;
          "net_acks", s.s_net_acks;
          "net_ack_drops", s.s_net_ack_drops;
          "net_gray_drops", s.s_net_gray_drops;
          "net_ack_deliveries", s.s_net_ack_deliveries;
          "net_timeouts", s.s_net_timeouts;
          "net_shed", s.s_net_shed;
          "net_link_downs", s.s_net_link_downs;
          "net_heals", s.s_net_heals;
          "net_probes", s.s_net_probes;
        ];
    Profiler.to_metrics t.profiler m
  end
