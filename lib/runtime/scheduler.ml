(** DFG scheduling: order pending nodes into batches.

    A batch is a set of nodes with identical signatures executed as one
    batched-kernel invocation. Three schemes, matching {!Config.scheduler}:

    - {b inline depth} (ACROBAT, §4.1): nodes already carry depths computed
      during DFG construction; scheduling is just grouping by
      (phase, depth, signature) — no graph traversal at flush time.
    - {b runtime depth} (DyNet's depth-based scheme; also ACROBAT with inline
      depth computation disabled): compute topological depths by traversing
      the graph at flush time, then group as above.
    - {b agenda} (DyNet's agenda-based scheme): maintain the ready set and
      repeatedly launch the largest group of compatible ready nodes.

    Scheduling work is charged to the device profiler per elementary
    operation (bucket pushes, graph-traversal steps, heap operations,
    signature hashes), which is how the Table 5 "Scheduling" row arises. *)

open Value
module Device = Acrobat_device.Device

type batch = node list

(* Group [nodes] by (phase, depth, signature); batches ordered by
   (phase, depth, first insertion). [depth_of] lets runtime-depth scheduling
   override the node's recorded depth. *)
let group_by_depth ?(depth_of = fun n -> n.depth) (nodes : node list) : batch list =
  let tbl : (int * int * string, (int * node list ref)) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let key = n.phase, depth_of n, n.sig_key in
      match Hashtbl.find_opt tbl key with
      | Some (_, cell) -> cell := n :: !cell
      | None -> Hashtbl.replace tbl key (n.seq, ref [ n ]))
    nodes;
  Hashtbl.fold (fun (phase, depth, _) (seq0, cell) acc -> ((phase, depth, seq0), List.rev !cell) :: acc) tbl []
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  |> List.map snd

let inline_depth (_device : Device.t) nodes =
  (* Depths were computed inline during construction; insertion already
     charged the O(1) bucket push per node. *)
  group_by_depth nodes

let runtime_depth (device : Device.t) nodes =
  (* Nodes arrive in insertion order, which is a valid dependency order
     (obs. O.1), so one forward pass suffices — but the traversal itself
     costs per node and per edge. *)
  let depths : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      Device.charge_heap_op device;
      let d =
        Array.fold_left
          (fun acc h ->
            Device.charge_scheduling device 0.02;
            match h with
            | Hnode (m, _) when not (node_executed m) ->
              max acc (1 + Option.value ~default:0 (Hashtbl.find_opt depths m.id))
            | Hnode _ | Hmat _ -> acc)
          0 n.args
      in
      Hashtbl.replace depths n.id d)
    nodes;
  group_by_depth ~depth_of:(fun n -> Hashtbl.find depths n.id) nodes

let agenda (device : Device.t) nodes =
  (* Kahn's algorithm over the pending subgraph with DyNet's agenda
     heuristic (Neubig et al. 2017b): among the signature classes with
     ready nodes, launch the one whose ready nodes have the lowest average
     topological depth — executing shallow work first lets deeper same-type
     nodes accumulate into bigger batches. *)
  let topo_depth : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      Device.charge_heap_op device;
      let d =
        Array.fold_left
          (fun acc h ->
            Device.charge_scheduling device 0.02;
            match h with
            | Hnode (m, _) when not (node_executed m) ->
              max acc (1 + Option.value ~default:0 (Hashtbl.find_opt topo_depth m.id))
            | Hnode _ | Hmat _ -> acc)
          0 n.args
      in
      Hashtbl.replace topo_depth n.id d)
    nodes;
  let pending : (int, node) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace pending n.id n) nodes;
  let indegree : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let dependents : (int, node list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let deps =
        Array.to_list n.args
        |> List.filter_map (function
             | Hnode (m, _) when Hashtbl.mem pending m.id && not (node_executed m) -> Some m
             | Hnode _ | Hmat _ -> None)
        |> List.sort_uniq (fun a b -> compare a.id b.id)
      in
      Hashtbl.replace indegree n.id (List.length deps);
      List.iter
        (fun m ->
          match Hashtbl.find_opt dependents m.id with
          | Some cell -> cell := n :: !cell
          | None -> Hashtbl.replace dependents m.id (ref [ n ]))
        deps)
    nodes;
  (* Ready sets per signature, with incrementally maintained depth sums so
     class selection is O(#classes). *)
  let ready : (string, node list ref * int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  let push n =
    Device.charge_signature_hash device;
    Device.charge_heap_op device;
    let d = Hashtbl.find topo_depth n.id in
    match Hashtbl.find_opt ready n.sig_key with
    | Some (cell, sum, count) ->
      cell := n :: !cell;
      sum := !sum + d;
      incr count
    | None -> Hashtbl.replace ready n.sig_key (ref [ n ], ref d, ref 1)
  in
  List.iter (fun n -> if Hashtbl.find indegree n.id = 0 then push n) nodes;
  let batches = ref [] in
  let remaining = ref (List.length nodes) in
  while !remaining > 0 do
    (* Pick the ready class with the lowest average depth (ties: larger). *)
    let score (_, sum, count) = float_of_int !sum /. float_of_int !count, - !count in
    let best =
      Hashtbl.fold
        (fun sg entry acc ->
          Device.charge_heap_op device;
          match acc with
          | Some (_, best_entry) when score best_entry <= score entry -> acc
          | _ -> Some (sg, entry))
        ready None
    in
    match best with
    | None -> Value.fail "agenda scheduler: dependency cycle in DFG"
    | Some (sg, (cell, _, _)) ->
      let batch = List.rev !cell in
      Hashtbl.remove ready sg;
      remaining := !remaining - List.length batch;
      batches := batch :: !batches;
      List.iter
        (fun n ->
          Device.charge_heap_op device;
          match Hashtbl.find_opt dependents n.id with
          | None -> ()
          | Some deps ->
            List.iter
              (fun d ->
                let k = Hashtbl.find indegree d.id - 1 in
                Hashtbl.replace indegree d.id k;
                if k = 0 then push d)
              !deps)
        batch
  done;
  List.rev !batches

let schedule (kind : Acrobat_compiler.Config.scheduler) device nodes =
  match kind with
  | Acrobat_compiler.Config.Inline_depth -> inline_depth device nodes
  | Acrobat_compiler.Config.Runtime_depth -> runtime_depth device nodes
  | Acrobat_compiler.Config.Agenda -> agenda device nodes
