(** ACROBAT: compile-time optimized auto-batching for dynamic deep learning.

    The top-level API. A typical session:

    {[
      let compiled = Acrobat.compile ~inputs:[ "inps" ] source in
      let compiled = Acrobat.tune compiled ~weights ~calibration in
      let result = Acrobat.run compiled ~weights ~instances () in
      ...
    ]}

    [compile] parses, type checks and lowers the input program under a
    framework configuration (ACROBAT by default; the DyNet / PyTorch
    baselines are selected through [framework]); [tune] runs the
    auto-scheduler with PGO-derived kernel priorities; [run] executes a
    mini-batch on the simulated accelerator and reports outputs plus the
    full activity profile. *)

module Tensor = Acrobat_tensor.Tensor
module Shape = Acrobat_tensor.Shape
module Rng = Acrobat_tensor.Rng
module Ops = Acrobat_tensor.Ops
module Ir = Acrobat_ir
module Config = Acrobat_compiler.Config
module Lower = Acrobat_compiler.Lower
module Lowered = Acrobat_compiler.Lowered
module Kernel = Acrobat_compiler.Kernel
module Autosched = Acrobat_compiler.Autosched
module Device = Acrobat_device.Device
module Cost_model = Acrobat_device.Cost_model
module Profiler = Acrobat_device.Profiler
module Memory = Acrobat_device.Memory
module Faults = Acrobat_device.Faults
module Net = Acrobat_net.Net
module Value = Acrobat_runtime.Value
module Driver = Acrobat_engines.Driver
module Policy = Acrobat_engines.Policy
module Frameworks = Acrobat_engines.Frameworks
module Cortex = Acrobat_engines.Cortex
module Model = Acrobat_models.Model
module Models = Acrobat_models.Catalog
module Workloads = Acrobat_workloads
module Serve = Acrobat_serve
module Obs = Acrobat_obs
module Trace = Acrobat_obs.Trace
module Metrics = Acrobat_obs.Metrics
module Chaos = Acrobat_chaos
module Tenancy = Acrobat_tenancy
module Resilience = Acrobat_resilience.Policy

type compiled = {
  lprog : Lowered.t;
  framework : Frameworks.kind;
  quality : int -> float;  (** Kernel schedule quality (auto-scheduled). *)
}

(** Parse, type check, analyze and lower [source]. [inputs] names the
    @main parameters that vary per batch instance (everything else is a
    model weight). *)
let compile ?(framework = Frameworks.Acrobat Config.acrobat) ?tracer
    ~(inputs : string list) (source : string) : compiled =
  let lprog = Lower.compile ~config:(Frameworks.config framework) ?tracer ~inputs source in
  let quality =
    match framework with
    | Frameworks.Acrobat _ ->
      (* Untuned: every kernel at the search floor until [tune] runs. *)
      fun _ -> Autosched.sample_floor
    | Frameworks.Dynet _ | Frameworks.Pytorch ->
      fun id -> Autosched.quality Frameworks.vendor_quality id
  in
  { lprog; framework; quality }

(** Execute a mini-batch. [compute_values] makes kernels produce real
    tensors (needed to inspect outputs; large benchmark configurations run
    accounting-only, cf. DESIGN.md). *)
let run ?compute_values ?seed (c : compiled) ~(weights : (string * Tensor.t) list)
    ~(instances : (string * Driver.hval) list list) () : Driver.result =
  Driver.run ?compute_values ?seed ~mode:(Frameworks.mode c.framework)
    ~policy:(Frameworks.policy c.framework) ~quality:c.quality ~lprog:c.lprog ~weights
    ~instances ()

(** Auto-schedule the generated kernels (§D.1): a profiling run on
    [calibration] collects per-kernel invocation counts and representative
    FLOPs; the iteration budget is then split by estimated cost — PGO
    counts when enabled, else the static nesting-depth heuristic — and the
    search runs per kernel. Baseline frameworks use vendor kernels and are
    returned unchanged. *)
let tune ?iters ?(search_seed = 0) (c : compiled) ~(weights : (string * Tensor.t) list)
    ~(calibration : (string * Driver.hval) list list) : compiled =
  match c.framework with
  | Frameworks.Dynet _ | Frameworks.Pytorch -> c
  | Frameworks.Acrobat cfg ->
    let iters = Option.value ~default:cfg.Config.autosched_iters iters in
    let profile_run = run c ~weights ~instances:calibration () in
    let profile = profile_run.Driver.profile in
    let lookup id = List.find_opt (fun (k, _, _, _) -> k = id) profile in
    let flops id =
      match lookup id with Some (_, _, mean_flops, _) -> mean_flops | None -> 1.0e6
    in
    let weight_elems id = match lookup id with Some (_, _, _, se) -> se | None -> 0 in
    let priority id =
      if cfg.Config.pgo then begin
        (* Exact execution cost: measured invocation count x measured work. *)
        match lookup id with Some (_, count, _, _) -> count *. flops id | None -> 1.0
      end
      else
        (* Static estimate: the nesting-depth frequency heuristic, with no
           knowledge of per-kernel work (SS D.1). *)
        Option.value ~default:1.0 (Hashtbl.find_opt c.lprog.Lowered.kernel_hints id)
    in
    let table =
      Autosched.tune ~seed:search_seed ~registry:c.lprog.Lowered.registry ~iters ~priority
        ~flops ~weight_elems ()
    in
    { c with quality = Autosched.quality table }

(** Convenience: compile and tune a catalog model for a framework. *)
let compile_model ?framework ?iters ?tracer (model : Model.t) ~(batch : int)
    ~(seed : int) : compiled * (string * Tensor.t) list =
  let c = compile ?framework ?tracer ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights seed in
  let rng = Rng.create (seed + 1) in
  let calibration = List.init (min 8 batch) (fun _ -> model.Model.gen_instance rng) in
  let c = tune ?iters c ~weights ~calibration in
  c, weights

(** Generate a seeded batch of instances for a model. *)
let gen_batch (model : Model.t) ~batch ~seed =
  let rng = Rng.create seed in
  List.init batch (fun _ -> model.Model.gen_instance rng)

(** Execute one mini-batch through {!Driver.run_batch}. Same as {!run} but
    exposes the per-batch entry point the serving loop shares.
    [instance_keys] re-keys per-instance decision streams by stable request
    ids (integrity mode; see {!Acrobat_runtime.Runtime.set_decision_keys}). *)
let run_batch ?compute_values ?seed ?device ?tracer ?instance_keys (c : compiled)
    ~(weights : (string * Tensor.t) list)
    ~(instances : (string * Driver.hval) list list) () : Driver.result =
  Driver.run_batch ?compute_values ?seed ?device ?tracer ?instance_keys
    ~mode:(Frameworks.mode c.framework) ~policy:(Frameworks.policy c.framework)
    ~quality:c.quality ~lprog:c.lprog ~weights ~instances ()

(* --- Online serving (lib/serve) glue --- *)

(** A {!Serve.Server} executor that runs each assembled batch through the
    real engine stack on a fresh simulated device, reporting the batch's
    simulated latency and activity profile. *)
let batch_executor ?(seed = 2024) ?tracer (c : compiled)
    ~(weights : (string * Tensor.t) list)
    (instances : (string * Driver.hval) list list) : Serve.Server.exec_outcome =
  let r = run_batch ~seed ?tracer c ~weights ~instances () in
  {
    Serve.Server.ex_latency_us = r.Driver.stats.latency_ms *. 1000.0;
    ex_profiler = Some r.Driver.stats.profiler;
    ex_fingerprints = None;
    ex_corrupted = false;
  }

(** Integrity-armed clean executor: like {!batch_executor} but computes
    real tensor values, keys each request's decision stream by its request
    id (so its outputs never depend on batch composition) and attaches
    per-request result fingerprints for the audit layer to compare. *)
let integrity_batch_executor ?(seed = 2024) ?tracer (c : compiled)
    ~(weights : (string * Tensor.t) list)
    (batch : (int * (string * Driver.hval) list) list) : Serve.Server.exec_outcome =
  let instance_keys = Array.of_list (List.map fst batch) in
  let r =
    run_batch ~compute_values:true ~seed ?tracer ~instance_keys c ~weights
      ~instances:(List.map snd batch) ()
  in
  {
    Serve.Server.ex_latency_us = r.Driver.stats.latency_ms *. 1000.0;
    ex_profiler = Some r.Driver.stats.profiler;
    ex_fingerprints = Some (Driver.fingerprints r);
    ex_corrupted = false;
  }

(** The audit layer's reference engine: re-execute one request {e unbatched}
    on a fresh, fault-free device (same compiled program, batch of one,
    decision stream keyed by the request id) and fingerprint the result.
    Batched and unbatched execution agree on values — ACROBAT's core
    equivalence — so any mismatch against the serving replica's fingerprint
    is corruption on that replica's device. *)
let reference_auditor ?(seed = 2024) ~rate (c : compiled)
    ~(weights : (string * Tensor.t) list) :
    (int * (string * Driver.hval) list) Serve.Server.auditor =
  {
    Serve.Server.au_rate = rate;
    (* Distinct stream: arming the auditor must not perturb payload,
       arrival, fault or jitter draws. *)
    au_seed = (seed * 61) + 29;
    au_reference =
      (fun id (_, inst) ->
        let r =
          run_batch ~compute_values:true ~seed ~instance_keys:[| id |] c ~weights
            ~instances:[ inst ] ()
        in
        (Driver.fingerprints r).(0), r.Driver.stats.latency_ms *. 1000.0);
  }

(** The outcome of a serving run: SLO summary plus the merged device
    activity profile (printable with {!Profiler.pp}, same report style as
    the offline bench). *)
type serve_report = {
  sv_summary : Serve.Stats.summary;
  sv_profiler : Profiler.t;
}

let serve_report_json (r : serve_report) : Serve.Json.t =
  Serve.Json.Obj
    (match Serve.Stats.summary_to_json r.sv_summary with
    | Serve.Json.Obj fields -> fields @ [ "profiler", Profiler.to_json r.sv_profiler ]
    | other -> [ "summary", other; "profiler", Profiler.to_json r.sv_profiler ])

(** A fault-aware {!Serve.Server} executor. Each batch runs on a fresh
    simulated device wired to the shared fault [injector] (so a retried
    batch draws fresh fault randomness — transient faults are transient).
    Requests whose ids appear in the plan's [poison] list fail the whole
    batch {e non-transiently}, leaving isolation to the server's bisection.
    Injected {!Faults.Fault} and {!Memory.Device_oom} exceptions are mapped
    to {!Serve.Server.Exec_fault} reports; the failed attempt's device time
    still occupies the virtual device. OOM is reported non-transient
    (re-running the same batch would OOM again) with [ef_oom] set so the
    server both bisects into smaller batches and shrinks its batch cap. *)
let fault_executor ?(seed = 2024) ?(integrity = false) ?tracer ~(injector : Faults.t)
    ~(primary : compiled) ?degraded_c ~(weights : (string * Tensor.t) list) ()
    ~(degraded : bool) (batch : (int * (string * Driver.hval) list) list) :
    Serve.Server.exec_result =
  let poison = (Faults.plan injector).Faults.poison in
  match List.find_opt (fun (id, _) -> List.mem id poison) batch with
  | Some (id, _) ->
    Serve.Server.Exec_fault
      {
        ef_latency_us = 100.0;
        ef_reason = Fmt.str "poisoned request #%d" id;
        ef_transient = false;
        ef_oom = false;
        ef_reset = false;
      }
  | None ->
    let c = if degraded then Option.value ~default:primary degraded_c else primary in
    let device = Device.create ~faults:injector ?tracer () in
    let instances = List.map snd batch in
    (* Integrity mode computes real values (so injected corruption has
       something to corrupt), keys decision streams by request id and
       fingerprints the results; legacy mode runs accounting-only with the
       exact RNG streams it always drew. *)
    let instance_keys =
      if integrity then Some (Array.of_list (List.map fst batch)) else None
    in
    (match
       run_batch ~compute_values:integrity ~seed ~device ?instance_keys c ~weights
         ~instances ()
     with
    | r ->
      Serve.Server.Exec_ok
        {
          Serve.Server.ex_latency_us = r.Driver.stats.latency_ms *. 1000.0;
          ex_profiler = Some r.Driver.stats.profiler;
          ex_fingerprints = (if integrity then Some (Driver.fingerprints r) else None);
          ex_corrupted = integrity && Faults.corrupt_attempt injector;
        }
    | exception Faults.Fault { kind; launch } ->
      Serve.Server.Exec_fault
        {
          ef_latency_us = Profiler.total_us (Device.profiler device);
          ef_reason = Fmt.str "%s at launch %d" (Faults.kind_name kind) launch;
          ef_transient = true;
          ef_oom = false;
          ef_reset = (kind = Faults.Device_reset);
        }
    | exception Memory.Device_oom { requested; in_use; capacity } ->
      Serve.Server.Exec_fault
        {
          ef_latency_us = Profiler.total_us (Device.profiler device);
          ef_reason =
            Fmt.str "device OOM (requested %d, in use %d / %d)" requested in_use capacity;
          ef_transient = false;
          ef_oom = true;
          ef_reset = false;
        })

(** Simulate serving [requests] independently-arriving instances of [model]
    under an arrival [process] and batch-assembly [policy].

    Compiles and tunes the model once, then replays the generated traffic
    trace through {!Serve.Server.simulate} with {!batch_executor} as the
    device: every assembled cross-request batch really executes (DFG
    construction, scheduling, batching, simulated kernels), and its cost
    model latency occupies the virtual device. Deterministic for a fixed
    [seed]. [arrivals] overrides the generated trace (e.g. a synchronized
    burst).

    When a fault [plan] with any fault source enabled is supplied, batches
    run under {!fault_executor} and the server's fault-tolerance machinery
    (retry, bisection, circuit breaker, degradation — see DESIGN.md SS8) is
    exercised; if the model carries a degraded variant it is compiled and
    tuned too, and swapped in while the server is degraded. [tolerance]
    overrides the recovery knobs. With the default [Faults.none] plan the
    executor, RNG draws and output are bit-identical to the fault-unaware
    server.

    [audit] arms the sampled-audit integrity layer at the given rate: each
    delivered request is, with that probability, re-executed unbatched on a
    clean reference device and its fingerprint compared before delivery
    (see {!Serve.Server.auditor}). Corruption in the fault plan
    ([corrupt=]/[flaky=]) or a positive audit rate switches executors to
    integrity mode (real values, id-keyed decision streams, fingerprints);
    both default off, leaving legacy runs byte-identical. *)
let serve_model ?(framework = Frameworks.Acrobat Config.acrobat) ?iters
    ?(policy = Serve.Server.default_config.Serve.Server.policy) ?(queue_capacity = 256)
    ?deadline_ms ?arrivals ?(faults = Faults.none) ?tolerance
    ?(resilience = Resilience.off) ?(audit = 0.0) ?tracer ?metrics
    ~(process : Serve.Traffic.process) ~(requests : int) ~(seed : int) (model : Model.t) :
    serve_report =
  let c, weights = compile_model ~framework ?iters ?tracer model ~batch:8 ~seed in
  let payload_rng = Rng.create ((seed * 31) + 5) in
  let payloads =
    Array.init requests (fun i -> i, model.Model.gen_instance payload_rng)
  in
  let arrivals =
    match arrivals with
    | Some a -> a
    | None -> Serve.Traffic.arrivals ~rng:(Rng.create ((seed * 53) + 11)) process ~n:requests
  in
  let fault_mode = Faults.enabled faults in
  let tolerance =
    match tolerance with
    | Some t -> t
    | None ->
      if fault_mode then
        { Serve.Server.default_tolerance with Serve.Server.degrade_high_frac = 0.85 }
      else Serve.Server.default_tolerance
  in
  let config =
    {
      Serve.Server.policy;
      queue_capacity;
      deadline_us = Option.map (fun ms -> ms *. 1000.0) deadline_ms;
      cost = Cost_model.default;
      tolerance;
      resilience;
    }
  in
  (* The brownout controller needs the degraded variant even on a
     fault-free run: proactive load shedding swaps models under pressure,
     not under faults. *)
  let brownout_mode = Option.is_some resilience.Resilience.rs_brownout in
  let integrity = Faults.corrupts faults || audit > 0.0 in
  let execute =
    if fault_mode || brownout_mode then begin
      let degraded_c =
        Option.map
          (fun dm -> fst (compile_model ~framework ?iters dm ~batch:8 ~seed))
          model.Model.degraded
      in
      if fault_mode then begin
        let injector = Faults.create faults in
        fault_executor ~seed ~integrity ?tracer ~injector ~primary:c ?degraded_c
          ~weights ()
      end
      else
        fun ~degraded batch ->
          let c = if degraded then Option.value ~default:c degraded_c else c in
          Serve.Server.Exec_ok
            (if integrity then integrity_batch_executor ~seed ?tracer c ~weights batch
             else batch_executor ~seed ?tracer c ~weights (List.map snd batch))
    end
    else if integrity then
      Serve.Server.infallible (integrity_batch_executor ~seed ?tracer c ~weights)
    else
      Serve.Server.infallible (fun batch ->
          batch_executor ~seed ?tracer c ~weights (List.map snd batch))
  in
  let auditor =
    if audit > 0.0 then Some (reference_auditor ~seed ~rate:audit c ~weights) else None
  in
  let stats =
    Serve.Server.simulate ?tracer ?metrics ?auditor config ~arrivals
      ~payload:(fun i -> payloads.(i))
      ~execute
  in
  { sv_summary = Serve.Stats.summarize stats; sv_profiler = stats.Serve.Stats.profiler }

(* --- Multi-tenant serving (lib/tenancy) glue --- *)

(** Simulate multi-tenant many-model serving over real compiled models
    (see {!Tenancy.Dispatcher}).

    Each distinct model named by a tenant is compiled and tuned {e once}
    and its parameter footprint measured once — the bytes the dispatcher
    charges as swap cost whenever a replica's resident model changes.
    [models] resolves a tenant's model id to the catalog entry to compile
    (e.g. [Models.tiny]); per-tenant request payloads are generated from
    each tenant's own seed ([(tn_seed * 31) + 5], mirroring the
    single-stream payload derivation), so adding a tenant never perturbs
    another tenant's instances. [fault_plans] is positional per replica
    slot, like {!serve_cluster}; autoscaled replicas beyond the list run
    fault-free.

    [audit] arms the sampled-audit integrity layer (see {!serve_model}):
    sampled requests re-execute unbatched on a clean reference device for
    {e their own} model before delivery, and a replica accumulating
    mismatches is quarantined — drained and replaced like-for-like by the
    pool (see {!Tenancy.Dispatcher}). Corruption in any fault plan or a
    positive audit rate switches every replica slot to integrity-mode
    executors; both default off, leaving legacy runs byte-identical. *)
let serve_tenants ?(framework = Frameworks.Acrobat Config.acrobat) ?iters
    ?(policy = Serve.Server.default_config.Serve.Server.policy) ?(queue_capacity = 256)
    ?(fault_plans = []) ?tolerance ?(min_replicas = 1) ?(max_replicas = 1)
    ?(swap_cost = Cost_model.default) ?(resilience = Resilience.off) ?hedge_percentile
    ?(audit = 0.0) ?net ?tracer ?metrics ~(models : string -> Model.t)
    ~(tenants : Tenancy.Tenant.t array) ~(seed : int) () : Tenancy.Dispatcher.report =
  let distinct =
    List.sort_uniq compare
      (Array.to_list (Array.map (fun t -> t.Tenancy.Tenant.tn_model) tenants))
  in
  let compiled =
    List.map
      (fun id ->
        let m = models id in
        let c, weights = compile_model ~framework ?iters ?tracer m ~batch:8 ~seed in
        id, (m, c, weights))
      distinct
  in
  let lookup id = List.assoc id compiled in
  (* Parameter footprints, measured once per model (not per swap). *)
  let bytes = List.map (fun (id, (m, _, _)) -> id, Model.param_bytes m) compiled in
  let model_bytes id = List.assoc id bytes in
  let instances =
    Array.map
      (fun t ->
        let m, _, _ = lookup t.Tenancy.Tenant.tn_model in
        let rng = Rng.create ((t.Tenancy.Tenant.tn_seed * 31) + 5) in
        Array.init t.Tenancy.Tenant.tn_requests (fun _ -> m.Model.gen_instance rng))
      tenants
  in
  let payload ~tenant ~index ~id = id, instances.(tenant).(index) in
  let tolerance = Option.value ~default:Serve.Server.default_tolerance tolerance in
  let cfg =
    {
      Tenancy.Dispatcher.t_server =
        {
          Serve.Server.policy;
          queue_capacity;
          deadline_us = None (* per-request deadlines come from tenant SLOs *);
          cost = Cost_model.default;
          tolerance;
          resilience;
        };
      t_autoscale = Tenancy.Autoscaler.default ~min_replicas ~max_replicas;
      t_swap_cost = swap_cost;
      t_resilience = resilience;
      t_hedge_percentile = hedge_percentile;
      t_net = net;
    }
  in
  let plan_for i = try List.nth fault_plans i with _ -> Faults.none in
  let integrity = List.exists Faults.corrupts fault_plans || audit > 0.0 in
  (* One executor closure per replica slot: a fault-injected slot keeps its
     own injector across every model it hosts (the device is flaky, not the
     model), while clean slots run the plain batch executor. Integrity mode
     switches every slot — clean ones included — to value-computing,
     fingerprinting executors, so audits genuinely compare batched against
     unbatched execution. *)
  let executors =
    Array.init (max 1 max_replicas) (fun i ->
        let plan = plan_for i in
        if Faults.enabled plan then begin
          let injector = Faults.create plan in
          fun (c : compiled) weights batch ->
            fault_executor ~seed ~integrity ?tracer ~injector ~primary:c ~weights ()
              ~degraded:false batch
        end
        else if integrity then
          fun c weights batch ->
            Serve.Server.infallible
              (integrity_batch_executor ~seed ?tracer c ~weights)
              ~degraded:false batch
        else
          fun c weights batch ->
            Serve.Server.infallible
              (fun b -> batch_executor ~seed ?tracer c ~weights (List.map snd b))
              ~degraded:false batch)
  in
  (* The audit layer needs each sampled request's own model to re-execute
     it; the dispatcher launches are the only place the (request, model)
     pairing exists, so integrity-mode launches record it here. Audits run
     strictly after the batch that produced the result, so the entry is
     always present by the time the reference engine looks it up. *)
  let model_of_req : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let execute i ~model batch =
    if integrity then
      List.iter (fun (id, _) -> Hashtbl.replace model_of_req id model) batch;
    let _, c, weights = lookup model in
    executors.(min i (Array.length executors - 1)) c weights batch
  in
  let auditor =
    if audit > 0.0 then
      Some
        {
          Serve.Server.au_rate = audit;
          au_seed = (seed * 61) + 29;
          au_reference =
            (fun id (_, inst) ->
              let _, c, weights = lookup (Hashtbl.find model_of_req id) in
              let r =
                run_batch ~compute_values:true ~seed ~instance_keys:[| id |] c
                  ~weights ~instances:[ inst ] ()
              in
              (Driver.fingerprints r).(0), r.Driver.stats.latency_ms *. 1000.0);
        }
    else None
  in
  Tenancy.Dispatcher.simulate ?tracer ?metrics ?auditor cfg ~tenants ~payload ~execute
    ~model_bytes

(* --- Replicated serving (lib/serve/cluster) glue --- *)

(** Per-replica slice of a cluster run's report. *)
type replica_report = {
  rr_id : int;
  rr_health : string;  (** Final health: up / probing / down. *)
  rr_summary : Serve.Stats.summary;
}

(** The outcome of a cluster serving run: the aggregate SLO summary (one
    terminal outcome per request, hedge/failover counters included), the
    merged device profile across all replicas, and per-replica views. *)
type cluster_report = {
  cr_summary : Serve.Stats.summary;
  cr_profiler : Profiler.t;
  cr_replicas : replica_report list;
}

let cluster_report_json (r : cluster_report) : Serve.Json.t =
  Serve.Json.Obj
    [
      "cluster", Serve.Stats.summary_to_json r.cr_summary;
      "profiler", Profiler.to_json r.cr_profiler;
      ( "replicas",
        Serve.Json.List
          (List.map
             (fun rr ->
               Serve.Json.Obj
                 [
                   "id", Serve.Json.Int rr.rr_id;
                   "health", Serve.Json.Str rr.rr_health;
                   "stats", Serve.Stats.summary_to_json rr.rr_summary;
                 ])
             r.cr_replicas) );
    ]

(** Simulate serving [requests] across [replicas] replicas of [model] on
    one virtual timeline (see {!Serve.Cluster}).

    The model is compiled and tuned {e once}; each replica gets its own
    simulated device and its own fault injector built from [fault_plans]
    (positional: plan [i] applies to replica [i]; missing entries mean no
    faults — the way to make one replica flaky while its peers stay
    healthy). [dispatch] picks the routing policy, [hedge_percentile]
    enables hedged requests, and [requeue_budget] caps failover
    re-dispatches per request. With [replicas = 1], no faults and hedging
    off, the aggregate summary is identical to {!serve_model}'s.

    [audit] arms the sampled-audit integrity layer on every replica; a
    replica whose audited results keep mismatching the clean reference is
    {e quarantined} (drained and fenced like a failed-over replica, then
    re-admitted only after clean audited probes — see {!Serve.Replica}).

    [net] interposes the lossy virtual transport between dispatcher and
    replicas (see {!Serve.Cluster} and [Acrobat_net.Net]): per-link delay,
    drop, duplication, reorder, gray loss and partition windows, with
    idempotency-keyed exactly-once delivery and timeout-driven resends.
    [None] keeps the direct-call path byte-identical. *)
let serve_cluster ?(framework = Frameworks.Acrobat Config.acrobat) ?iters
    ?(policy = Serve.Server.default_config.Serve.Server.policy) ?(queue_capacity = 256)
    ?deadline_ms ?arrivals ?(fault_plans = []) ?tolerance
    ?(dispatch = Serve.Cluster.Join_shortest_queue) ?hedge_percentile
    ?(requeue_budget = Serve.Cluster.default_config.Serve.Cluster.c_requeue_budget)
    ?(resilience = Resilience.off) ?(audit = 0.0) ?net ?tracer ?metrics ?(replicas = 1)
    ~(process : Serve.Traffic.process) ~(requests : int)
    ~(seed : int) (model : Model.t) : cluster_report =
  let c, weights = compile_model ~framework ?iters ?tracer model ~batch:8 ~seed in
  let payload_rng = Rng.create ((seed * 31) + 5) in
  let payloads =
    Array.init requests (fun i -> i, model.Model.gen_instance payload_rng)
  in
  let arrivals =
    match arrivals with
    | Some a -> a
    | None -> Serve.Traffic.arrivals ~rng:(Rng.create ((seed * 53) + 11)) process ~n:requests
  in
  let plan_for i = try List.nth fault_plans i with _ -> Faults.none in
  let fault_mode = List.exists Faults.enabled fault_plans in
  let tolerance =
    match tolerance with
    | Some t -> t
    | None ->
      if fault_mode then
        { Serve.Server.default_tolerance with Serve.Server.degrade_high_frac = 0.85 }
      else Serve.Server.default_tolerance
  in
  let server_config =
    {
      Serve.Server.policy;
      queue_capacity;
      deadline_us = Option.map (fun ms -> ms *. 1000.0) deadline_ms;
      cost = Cost_model.default;
      tolerance;
      resilience;
    }
  in
  let brownout_mode = Option.is_some resilience.Resilience.rs_brownout in
  let degraded_c =
    if fault_mode || brownout_mode then
      Option.map
        (fun dm -> fst (compile_model ~framework ?iters dm ~batch:8 ~seed))
        model.Model.degraded
    else None
  in
  (* One executor (and one injector) per replica: a retried or failed-over
     batch lands on a device with its own independent fault stream. When the
     integrity layer is armed, every replica — clean ones included — runs in
     integrity mode, so each batch carries fingerprints the audit can check
     (a clean replica's fingerprints simply always match the reference). *)
  let integrity = List.exists Faults.corrupts fault_plans || audit > 0.0 in
  let executors =
    Array.init replicas (fun i ->
        let plan = plan_for i in
        if Faults.enabled plan then
          let injector = Faults.create plan in
          fault_executor ~seed ~integrity ?tracer ~injector ~primary:c ?degraded_c
            ~weights ()
        else if brownout_mode then
          fun ~degraded batch ->
            let c = if degraded then Option.value ~default:c degraded_c else c in
            Serve.Server.Exec_ok
              (if integrity then integrity_batch_executor ~seed ?tracer c ~weights batch
               else batch_executor ~seed ?tracer c ~weights (List.map snd batch))
        else if integrity then
          Serve.Server.infallible (integrity_batch_executor ~seed ?tracer c ~weights)
        else
          Serve.Server.infallible (fun batch ->
              batch_executor ~seed ?tracer c ~weights (List.map snd batch)))
  in
  let auditor =
    if audit > 0.0 then Some (reference_auditor ~seed ~rate:audit c ~weights) else None
  in
  let cfg =
    {
      Serve.Cluster.default_config with
      Serve.Cluster.c_server = server_config;
      c_replicas = replicas;
      c_dispatch = dispatch;
      c_hedge_percentile = hedge_percentile;
      c_requeue_budget = requeue_budget;
      c_net = net;
    }
  in
  let report =
    Serve.Cluster.simulate ?tracer ?metrics ?auditor cfg ~arrivals
      ~payload:(fun i -> payloads.(i))
      ~executors
  in
  {
    cr_summary = Serve.Stats.summarize report.Serve.Cluster.cluster_stats;
    cr_profiler = report.Serve.Cluster.cluster_stats.Serve.Stats.profiler;
    cr_replicas =
      List.map
        (fun (v : Serve.Cluster.replica_view) ->
          {
            rr_id = v.Serve.Cluster.rv_id;
            rr_health = Serve.Replica.health_name v.Serve.Cluster.rv_health;
            rr_summary = Serve.Stats.summarize v.Serve.Cluster.rv_stats;
          })
        report.Serve.Cluster.replica_views;
  }
