(** Word-embedding tables: deterministic per-word tensors, cached so
    repeated words share host storage (each use is still uploaded — and
    charged — separately, as the frameworks would). *)

open Acrobat_tensor

type t = { cache : (int, Tensor.t) Hashtbl.t; shape : Shape.t; seed : int }

let create ~shape ~seed = { cache = Hashtbl.create 256; shape; seed }

let lookup t word =
  match Hashtbl.find_opt t.cache word with
  | Some x -> x
  | None ->
    let rng = Rng.create ((t.seed * 65_599) + word) in
    let x = Tensor.random rng t.shape in
    Hashtbl.replace t.cache word x;
    x
