(** Deterministic chaos harness: randomized fault search over the serving
    stack, a reusable invariant suite, and shrinking reproducers.

    - {!Scenario} — randomized serving scenarios (traffic, topology,
      dispatch/hedge config, per-replica fault plans) from a seeded RNG;
    - {!Invariants} — the oracle suite every run must satisfy
      (conservation, terminal uniqueness, no duplicate completions,
      requeue budgets, zero clamped schedules, goodput floors, replay);
    - {!Shrink} — delta-debugging minimization of violating scenarios;
    - campaign driving (this module, from [Campaign]): run many scenarios,
      collect violations, shrink them, and emit one-line CLI reproducers. *)

module Scenario = Scenario
module Invariants = Invariants
module Shrink = Shrink
include Campaign
