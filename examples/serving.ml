(** Online serving: cross-request dynamic batching under bursty traffic.

    The offline examples hand the engine a pre-assembled mini-batch; a
    production front-end never gets that luxury — requests arrive one at a
    time from independent clients. This example compiles a TreeLSTM once,
    then replays the same bursty (Markov-modulated Poisson) trace through
    three batch-assembly policies and prints the SLO report for each,
    showing how the adaptive batcher recovers offline-style batch
    efficiency from single-instance arrivals.

    Run with: [dune exec examples/serving.exe] *)

open Acrobat

let requests = 120
let seed = 11

let process =
  (* Quiet baseline punctuated by flash crowds ~8x over it. *)
  Serve.Traffic.Bursty
    { rate_low_per_s = 500.0; rate_high_per_s = 4000.0; mean_dwell_us = 20_000.0 }

let () =
  let model = Models.tiny "treelstm" in
  Fmt.pr "Serving %s under %a, %d requests@.@." model.Model.name
    Serve.Traffic.pp_process process requests;
  List.iter
    (fun policy ->
      let report = serve_model ~iters:100 ~policy ~process ~requests ~seed model in
      Fmt.pr "--- %a ---@.%a@.@." Serve.Batcher.pp_policy policy
        Serve.Stats.pp_summary report.sv_summary)
    [
      Serve.Batcher.Batch1;
      Serve.Batcher.Fixed { max_batch = 8; max_wait_us = 2_000.0 };
      Serve.Batcher.Adaptive { max_batch = 8; max_wait_us = 2_000.0 };
    ]
