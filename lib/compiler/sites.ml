(** Stable identities for syntactic sites (operator applications, calls,
    maps) of an ANF program.

    Passes after ANF (taint analysis, lowering) must agree on which site is
    which; we number sub-expressions by physical identity in one traversal
    over the shared in-memory AST. *)

open Acrobat_ir

type t = { ids : (Obj.t * int) list ref; next : int ref }

let create () = { ids = ref []; next = ref 0 }

let rec assq_phys k = function
  | [] -> None
  | (k', v) :: rest -> if k == k' then Some v else assq_phys k rest

(** The unique id of expression [e], assigning one on first sight. *)
let id t (e : Ast.expr) : int =
  let key = Obj.repr e in
  match assq_phys key !(t.ids) with
  | Some i -> i
  | None ->
    let i = !(t.next) in
    incr t.next;
    t.ids := (key, i) :: !(t.ids);
    i

let count t = !(t.next)
