(** Adaptive concurrency limiter: AIMD on observed queue delay.

    The limiter gates admission {e ahead} of the bounded queue: a request
    is admitted only while the queue holds fewer than [limit] requests.
    The limit adapts to the delay the queue actually produces — every
    batch launch reports the age of its oldest request, and the limit
    climbs additively while delay stays under the target and backs off
    multiplicatively when it overshoots. Under sustained overload the
    queue is therefore kept short enough that admitted requests still
    have a chance of meeting their deadlines, and the excess is shed at
    the door where it is cheap (DESIGN.md §13).

    Deterministic: pure arithmetic on virtual-clock observations. *)

type t = {
  target_us : float;  (** Queue-delay setpoint. *)
  mutable limit : float;
  min_limit : float;
  max_limit : float;
  mutable decreases : int;  (** Multiplicative backoffs taken (telemetry). *)
}

let additive_step = 1.0
let backoff_factor = 0.7

let create ~target_us ?(initial = 8.0) ?(min_limit = 1.0) ?(max_limit = 1024.0) () =
  { target_us; limit = initial; min_limit; max_limit; decreases = 0 }

let limit t = t.limit
let target_us t = t.target_us
let decreases t = t.decreases

(** Would a request be admitted with [queued] requests already waiting? *)
let admits t ~queued = float_of_int queued < t.limit

(** Feed one queue-delay observation (age of the oldest request at batch
    launch) into the AIMD loop. *)
let observe t ~delay_us =
  if delay_us > t.target_us then begin
    t.limit <- Float.max t.min_limit (t.limit *. backoff_factor);
    t.decreases <- t.decreases + 1
  end
  else t.limit <- Float.min t.max_limit (t.limit +. additive_step)
