(** Primitive tensor operators of the input language.

    Each operator knows its shape rule, a FLOP estimate (consumed by the
    device cost model and the auto-scheduler), and whether it is elementwise
    (the property kernel fusion keys on). *)

open Acrobat_tensor

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Matmul
  | Sigmoid
  | Tanh
  | Relu
  | Gelu
  | Exp
  | Softmax
  | Argmax
  | Concat of int  (** Number of inputs; concatenation along the last axis. *)
  | Slice of { lo : int; hi : int }  (** Slice of the last axis. *)
  | Constant of { shape : Shape.t; value : float }  (** 0-input constant. *)
  | Transpose
  | Reduce_sum
  | Reduce_mean
  | Layernorm  (** [x; gain; bias]. *)
  | Entropy
  | Random of { shape : Shape.t }
      (** 0-input pseudo-random tensor; underlies emulated tensor-dependent
          control flow (paper §E.1). *)

let name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Matmul -> "matmul"
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Relu -> "relu"
  | Gelu -> "gelu"
  | Exp -> "exp"
  | Softmax -> "softmax"
  | Argmax -> "argmax"
  | Concat n -> Fmt.str "concat%d" n
  | Slice { lo; hi } -> Fmt.str "slice_%d_%d" lo hi
  | Constant { value; _ } -> Fmt.str "const_%g" value
  | Transpose -> "transpose"
  | Reduce_sum -> "reduce_sum"
  | Reduce_mean -> "reduce_mean"
  | Layernorm -> "layernorm"
  | Entropy -> "entropy"
  | Random _ -> "random"

let arity = function
  | Add | Sub | Mul | Div | Matmul -> 2
  | Sigmoid | Tanh | Relu | Gelu | Exp | Softmax | Argmax | Transpose | Reduce_sum
  | Reduce_mean | Entropy ->
    1
  | Slice _ -> 1
  | Concat n -> n
  | Constant _ | Random _ -> 0
  | Layernorm -> 3

(** Is the op elementwise (fusable into a producer/consumer without changing
    the iteration space)? Broadcasting adds/muls count: the fused kernel just
    indexes the smaller operand. *)
let is_elementwise = function
  | Add | Sub | Mul | Div | Sigmoid | Tanh | Relu | Gelu | Exp -> true
  | Matmul | Softmax | Argmax | Concat _ | Slice _ | Constant _ | Transpose
  | Reduce_sum | Reduce_mean | Layernorm | Entropy | Random _ ->
    false

exception Shape_error of string

let shape_fail op fmt =
  Fmt.kstr (fun m -> raise (Shape_error (Fmt.str "%s: %s" (name op) m))) fmt

(** Output shape given input shapes. *)
let out_shape op (inputs : Shape.t list) : Shape.t =
  let unary () = match inputs with [ s ] -> s | _ -> shape_fail op "expected 1 input" in
  match op with
  | Add | Sub | Mul | Div -> begin
    match inputs with
    | [ a; b ] -> Shape.broadcast a b
    | _ -> shape_fail op "expected 2 inputs"
  end
  | Matmul -> begin
    match inputs with
    | [ a; b ] -> Shape.matmul a b
    | _ -> shape_fail op "expected 2 inputs"
  end
  | Sigmoid | Tanh | Relu | Gelu | Exp | Softmax -> unary ()
  | Argmax -> begin
    match unary () with
    | [] | [ _ ] -> [ 1 ]
    | s -> List.filteri (fun i _ -> i < Shape.rank s - 1) s
  end
  | Concat n ->
    if List.length inputs <> n then shape_fail op "expected %d inputs" n;
    let axis = Shape.rank (List.hd inputs) - 1 in
    Shape.concat ~axis inputs
  | Slice { lo; hi } ->
    let s = unary () in
    let w = match List.rev s with d :: _ -> d | [] -> 0 in
    if not (0 <= lo && lo < hi && hi <= w) then
      shape_fail op "range [%d,%d) out of bounds for %a" lo hi Shape.pp s;
    List.mapi (fun i d -> if i = Shape.rank s - 1 then hi - lo else d) s
  | Constant { shape; _ } | Random { shape } ->
    if inputs <> [] then shape_fail op "expected 0 inputs";
    shape
  | Transpose -> begin
    match unary () with
    | [ m; n ] -> [ n; m ]
    | s -> shape_fail op "expected 2-D input, got %a" Shape.pp s
  end
  | Reduce_sum | Reduce_mean | Entropy -> [ 1 ]
  | Layernorm -> begin
    match inputs with
    | [ x; _; _ ] -> x
    | _ -> shape_fail op "expected 3 inputs"
  end

(** FLOP estimate for the cost model. *)
let flops op (inputs : Shape.t list) : float =
  let out = out_shape op inputs in
  let n = float_of_int (Shape.numel out) in
  match op with
  | Add | Sub | Mul | Div | Relu -> n
  | Sigmoid | Tanh | Exp -> 4.0 *. n
  | Gelu -> 8.0 *. n
  | Matmul -> begin
    match inputs with
    | [ [ m; k ]; [ _; p ] ] -> 2.0 *. float_of_int (m * k * p)
    | _ -> n
  end
  | Softmax -> 5.0 *. n
  | Argmax | Concat _ | Slice _ | Transpose ->
    (* Memory-bound: charge one flop-equivalent per element moved. *)
    float_of_int (List.fold_left (fun acc s -> acc + Shape.numel s) 0 inputs)
  | Constant _ | Random _ -> n
  | Reduce_sum | Reduce_mean | Entropy ->
    float_of_int (List.fold_left (fun acc s -> acc + Shape.numel s) 0 inputs)
  | Layernorm -> 8.0 *. float_of_int (Shape.numel (List.hd inputs))

(** Reference semantics on concrete tensors. [rand] supplies values for
    {!Random} nodes. *)
let eval ?rand op (args : Tensor.t list) : Tensor.t =
  match op, args with
  | Add, [ a; b ] -> Ops.add a b
  | Sub, [ a; b ] -> Ops.sub a b
  | Mul, [ a; b ] -> Ops.mul a b
  | Div, [ a; b ] -> Ops.div a b
  | Matmul, [ a; b ] -> Ops.matmul a b
  | Sigmoid, [ a ] -> Ops.sigmoid a
  | Tanh, [ a ] -> Ops.tanh a
  | Relu, [ a ] -> Ops.relu a
  | Gelu, [ a ] -> Ops.gelu a
  | Exp, [ a ] -> Ops.exp a
  | Softmax, [ a ] -> Ops.softmax a
  | Argmax, [ a ] -> Ops.argmax a
  | Concat _, args -> Ops.concat args
  | Slice { lo; hi }, [ a ] -> Ops.slice a ~lo ~hi
  | Constant { shape; value }, [] -> Tensor.full shape value
  | Random { shape }, [] -> begin
    match rand with
    | Some rng -> Tensor.init shape (fun _ -> Rng.float rng)
    | None -> Tensor.zeros shape
  end
  | Transpose, [ a ] -> Ops.transpose a
  | Reduce_sum, [ a ] -> Ops.reduce_sum a
  | Reduce_mean, [ a ] -> Ops.reduce_mean a
  | Layernorm, [ x; g; b ] -> Ops.layernorm x g b
  | Entropy, [ a ] -> Ops.entropy a
  | ( ( Add | Sub | Mul | Div | Matmul | Sigmoid | Tanh | Relu | Gelu | Exp | Softmax
      | Argmax | Slice _ | Constant _ | Random _ | Transpose | Reduce_sum | Reduce_mean
      | Layernorm | Entropy ),
      _ ) ->
    shape_fail op "wrong number of arguments (%d)" (List.length args)
