(** A shift/reduce (StackRNN) parser: per-step tensor-dependent action
    decisions, an argmax operator DyNet cannot batch, and conditional
    branches that ghost operators keep depth-aligned.

    Run with: [dune exec examples/shift_reduce_parser.exe] *)

open Acrobat
module P = Profiler

let () =
  let model = Acrobat_models.Stackrnn.make ~hidden:16 Model.Small in
  let weights = model.Model.gen_weights 3 in
  let instances = gen_batch model ~batch:16 ~seed:31 in

  let run_config name config =
    let compiled = compile ~framework:(Frameworks.Acrobat config) ~inputs:model.Model.inputs
        model.Model.source
    in
    let compiled = tune compiled ~weights ~calibration:instances in
    let r = run compiled ~weights ~instances () in
    let p = r.Driver.stats.profiler in
    Fmt.pr "%-12s latency=%6.2f ms  batches=%4d  singletons=%4d@." name
      r.Driver.stats.latency_ms p.P.batches_executed p.P.unbatched_ops;
    r
  in
  Fmt.pr "parsing 16 synthetic sentences (shift/reduce, random oracle):@.";
  let with_ghosts = run_config "ghost-ops" Config.acrobat in
  let without = run_config "no-ghosts" { Config.acrobat with Config.ghost_ops = false } in
  Fmt.pr "@.ghost operators re-align instances after divergent actions (Fig. 4):@.";
  Fmt.pr "  batches %d -> %d@." without.Driver.stats.profiler.P.batches_executed
    with_ghosts.Driver.stats.profiler.P.batches_executed;

  (* DyNet executes the per-step argmax unbatched (§E.4). *)
  let dynet =
    compile ~framework:(Frameworks.Dynet { improved = false; scheduler = Config.Agenda })
      ~inputs:model.Model.inputs model.Model.source
  in
  let r = run dynet ~weights ~instances () in
  Fmt.pr "@.dynet: %d ops executed one-by-one (argmax has no batched vendor kernel)@."
    r.Driver.stats.profiler.P.unbatched_ops
