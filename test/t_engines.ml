(** Cross-engine tests: numerical agreement between ACROBAT (AOT and VM),
    DyNet (both schedulers) and PyTorch on every model; determinism;
    framework-behaviour differences (batching, constants, gathers). *)

open Acrobat
open T_util
module P = Profiler

let floats = Alcotest.(list (float 1e-9))

let run_values ?(batch = 4) ~framework ?mode id =
  let model = Models.tiny id in
  let compiled = compile ~framework ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch ~seed:3 in
  let r =
    match mode with
    | None -> run ~compute_values:true compiled ~weights ~instances ()
    | Some mode ->
      Driver.run ~compute_values:true ~mode ~policy:(Frameworks.policy framework)
        ~quality:compiled.quality ~lprog:compiled.lprog ~weights ~instances ()
  in
  output_values r

(* DRNN is excluded from cross-engine agreement: ACROBAT's fibers change the
   order pseudo-random decisions are drawn in, as the paper notes in §E.1. *)
let agreement_ids =
  [ "rnn"; "treelstm"; "mvrnn"; "birnn"; "nestedrnn"; "berxit"; "stackrnn"; "beamsearch"; "moe" ]

let test_engines_agree id () =
  let reference = run_values ~framework:acrobat_kind id in
  check_true "produced outputs" (reference <> []);
  Alcotest.check floats "vm = aot" reference (run_values ~framework:acrobat_kind ~mode:Driver.Vm_mode id);
  Alcotest.check floats "dynet-agenda = acrobat" reference (run_values ~framework:dynet_kind id);
  Alcotest.check floats "dynet-depth = acrobat" reference
    (run_values ~framework:dynet_depth_kind id);
  Alcotest.check floats "pytorch = acrobat" reference (run_values ~framework:Frameworks.Pytorch id)

let test_drnn_dynet_matches_pytorch () =
  (* Without forked fibers the decision order is sequential and shared. *)
  Alcotest.check floats "dynet = pytorch on drnn"
    (run_values ~framework:dynet_kind "drnn")
    (run_values ~framework:Frameworks.Pytorch "drnn")

let test_run_deterministic () =
  List.iter
    (fun id ->
      Alcotest.check floats (id ^ " deterministic")
        (run_values ~framework:acrobat_kind id)
        (run_values ~framework:acrobat_kind id))
    [ "treelstm"; "drnn"; "stackrnn" ]

let test_ablation_preserves_semantics () =
  (* Every optimization combination computes the same values. *)
  let id = "treelstm" in
  let reference = run_values ~framework:acrobat_kind id in
  List.iter
    (fun (label, config) ->
      Alcotest.check floats (label ^ " preserves values") reference
        (run_values ~framework:(Frameworks.Acrobat config) id))
    [
      "no-fusion", { Config.acrobat with Config.kernel_fusion = false; horizontal_fusion = false };
      "no-coarsening", { Config.acrobat with Config.grain_coarsening = false };
      "runtime-depth", { Config.acrobat with Config.scheduler = Config.Runtime_depth };
      "agenda", { Config.acrobat with Config.scheduler = Config.Agenda };
      "no-phases", { Config.acrobat with Config.program_phases = false };
      "no-ghosts", { Config.acrobat with Config.ghost_ops = false };
      "no-gather-fusion", { Config.acrobat with Config.gather_fusion = false };
      "no-hoisting", { Config.acrobat with Config.hoisting = false };
      "no-context", { Config.acrobat with Config.context_sensitive = false };
      "no-reuse", { Config.acrobat with Config.parameter_reuse = false; hoisting = false };
      "no-constants",
      { Config.acrobat with Config.constant_reuse = false; hoisting = false };
    ]

let stats ?(batch = 8) ~framework id =
  let model = Models.tiny id in
  let compiled = compile ~framework ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch ~seed:3 in
  (run compiled ~weights ~instances ()).Driver.stats

(* --- Result fingerprints across engines (the audit layer's detector) --- *)

let int64s = Alcotest.(list int64)

let run_fps ?(batch = 4) ~framework ?mode id =
  let model = Models.tiny id in
  let compiled = compile ~framework ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch ~seed:3 in
  let r =
    match mode with
    | None -> run ~compute_values:true compiled ~weights ~instances ()
    | Some mode ->
      Driver.run ~compute_values:true ~mode ~policy:(Frameworks.policy framework)
        ~quality:compiled.quality ~lprog:compiled.lprog ~weights ~instances ()
  in
  Array.to_list (Driver.fingerprints r)

(* The property the whole audit path rests on: the fingerprint of a request
   depends only on its output values, so every engine — batching the batch
   completely differently — digests identical fingerprints. A reference
   re-execution on any engine is therefore a valid audit oracle. *)
let test_fingerprints_cross_engine id () =
  let reference = run_fps ~framework:acrobat_kind id in
  check_true "fingerprints are non-degenerate"
    (List.exists (fun fp -> fp <> 0L) reference);
  Alcotest.check int64s "vm = aot" reference
    (run_fps ~framework:acrobat_kind ~mode:Driver.Vm_mode id);
  Alcotest.check int64s "dynet-agenda = acrobat" reference
    (run_fps ~framework:dynet_kind id);
  Alcotest.check int64s "dynet-depth = acrobat" reference
    (run_fps ~framework:dynet_depth_kind id);
  Alcotest.check int64s "pytorch = acrobat" reference
    (run_fps ~framework:Frameworks.Pytorch id)

let test_fingerprint_batch_invariant () =
  (* Batched and unbatched execution of the same request digest the same
     fingerprint when decision streams are keyed by stable request ids —
     the equivalence that lets a sampled unbatched re-execution detect
     batched-path corruption, and ACROBAT's value-preservation claim in
     checksum form. *)
  let model = Models.tiny "treelstm" in
  let compiled = compile ~framework:acrobat_kind ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch:4 ~seed:3 in
  let keys = [| 10; 11; 12; 13 |] in
  let fps ~instance_keys instances =
    Driver.fingerprints
      (run_batch ~compute_values:true ~seed:7 ~instance_keys compiled ~weights ~instances ())
  in
  let batched = fps ~instance_keys:keys instances in
  List.iteri
    (fun i inst ->
      Alcotest.(check int64)
        (Fmt.str "instance %d: unbatched = batched" i)
        batched.(i)
        (fps ~instance_keys:[| keys.(i) |] [ inst ]).(0))
    instances;
  (* Re-batching a permuted subset leaves each member's fingerprint
     untouched: the digest never depends on batch composition. *)
  let sub = fps ~instance_keys:[| keys.(2); keys.(0) |]
      [ List.nth instances 2; List.nth instances 0 ] in
  Alcotest.(check int64) "permuted member 2" batched.(2) sub.(0);
  Alcotest.(check int64) "permuted member 0" batched.(0) sub.(1)

let test_acrobat_batches_better () =
  List.iter
    (fun id ->
      let ab = stats ~framework:acrobat_kind id in
      let dy = stats ~framework:dynet_kind id in
      check_true (id ^ ": fewer nodes") (ab.Driver.profiler.P.nodes_created <= dy.Driver.profiler.P.nodes_created);
      check_true (id ^ ": fewer batches")
        (ab.Driver.profiler.P.batches_executed < dy.Driver.profiler.P.batches_executed);
      check_true (id ^ ": less scheduling time")
        (P.time_us ab.Driver.profiler P.Scheduling < P.time_us dy.Driver.profiler P.Scheduling))
    [ "treelstm"; "rnn"; "birnn" ]

let test_dynet_mvrnn_unbatched_matmuls () =
  (* DyNet's matmul heuristic forces MV-RNN's activation x activation
     products to run one-by-one (§E.4); DN++ fixes it. *)
  let dn = stats ~framework:dynet_kind "mvrnn" in
  let dnpp =
    stats ~framework:(Frameworks.Dynet { improved = true; scheduler = Config.Agenda }) "mvrnn"
  in
  check_true "DN++ reduces unbatched ops"
    (dnpp.Driver.profiler.P.unbatched_ops < dn.Driver.profiler.P.unbatched_ops);
  check_true "DN++ faster" (dnpp.Driver.latency_ms < dn.Driver.latency_ms)

let test_acrobat_batched_transfers () =
  let ab = stats ~framework:acrobat_kind "rnn" in
  let dy = stats ~framework:dynet_kind "rnn" in
  check_true "acrobat: few memcpys" (ab.Driver.profiler.P.memcpy_calls <= 3);
  check_true "dynet: per-tensor memcpys" (dy.Driver.profiler.P.memcpy_calls > 8)

let test_fibers_exploit_drnn_parallelism () =
  let with_fibers = stats ~framework:acrobat_kind "drnn" in
  let without =
    stats ~framework:(Frameworks.Acrobat { Config.acrobat with Config.fibers = false }) "drnn"
  in
  check_true "fibers batch concurrent subtrees"
    (with_fibers.Driver.profiler.P.batches_executed < without.Driver.profiler.P.batches_executed);
  check_true "fibers reduce latency" (with_fibers.Driver.latency_ms < without.Driver.latency_ms)

let test_gather_fusion_removes_gathers () =
  let fused = stats ~framework:acrobat_kind "treelstm" in
  check_int "no explicit gathers with fusion" 0 fused.Driver.profiler.P.gather_kernels;
  let unfused =
    stats ~framework:(Frameworks.Acrobat { Config.acrobat with Config.gather_fusion = false })
      "treelstm"
  in
  check_true "explicit gathers otherwise" (unfused.Driver.profiler.P.gather_kernels > 0)

let test_tdc_flushes () =
  (* Tensor-dependent control flow forces intermediate flushes; static
     models flush once. *)
  let tree = stats ~framework:acrobat_kind "treelstm" in
  check_int "non-TDC model flushes once" 1 tree.Driver.flushes;
  let stack = stats ~framework:acrobat_kind "stackrnn" in
  check_true "TDC model flushes repeatedly" (stack.Driver.flushes > 5)

let test_vm_slower_than_aot () =
  let model = Models.tiny "rnn" in
  let compiled = compile ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let instances = gen_batch model ~batch:8 ~seed:3 in
  let time mode =
    (Driver.run ~mode ~policy:Policy.acrobat_policy ~quality:compiled.quality
       ~lprog:compiled.lprog ~weights ~instances ())
      .Driver.stats.latency_ms
  in
  check_true "VM overhead" (time Driver.Vm_mode > 1.5 *. time Driver.Aot_mode)

let test_tune_improves_quality () =
  let model = Models.tiny "rnn" in
  let compiled = compile ~inputs:model.Model.inputs model.Model.source in
  let weights = model.Model.gen_weights 1 in
  let calibration = gen_batch model ~batch:4 ~seed:9 in
  let tuned = tune compiled ~weights ~calibration in
  let instances = gen_batch model ~batch:8 ~seed:3 in
  let t c = (run c ~weights ~instances ()).Driver.stats.latency_ms in
  check_true "tuned kernels are faster" (t tuned < t compiled)

let suite =
  List.map
    (fun id ->
      Alcotest.test_case ("agreement: " ^ id) `Quick (test_engines_agree id))
    agreement_ids
  @ List.map
      (fun id ->
        Alcotest.test_case ("fingerprints: " ^ id) `Quick
          (test_fingerprints_cross_engine id))
      agreement_ids
  @ [
      Alcotest.test_case "agreement: drnn dynet=pytorch" `Quick test_drnn_dynet_matches_pytorch;
      Alcotest.test_case "determinism" `Quick test_run_deterministic;
      Alcotest.test_case "fingerprint batch invariance" `Quick
        test_fingerprint_batch_invariant;
      Alcotest.test_case "ablations preserve semantics" `Quick test_ablation_preserves_semantics;
      Alcotest.test_case "acrobat batches better" `Quick test_acrobat_batches_better;
      Alcotest.test_case "dynet mvrnn heuristic" `Quick test_dynet_mvrnn_unbatched_matmuls;
      Alcotest.test_case "batched transfers" `Quick test_acrobat_batched_transfers;
      Alcotest.test_case "fibers exploit DRNN parallelism" `Quick test_fibers_exploit_drnn_parallelism;
      Alcotest.test_case "gather fusion" `Quick test_gather_fusion_removes_gathers;
      Alcotest.test_case "TDC flush pattern" `Quick test_tdc_flushes;
      Alcotest.test_case "VM slower than AOT" `Quick test_vm_slower_than_aot;
      Alcotest.test_case "auto-scheduling helps" `Quick test_tune_improves_quality;
    ]
